"""Energy domain — power plants, meters and readings (utility-grid data is
one of BIRD's professional domains)."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="energy",
    description="A regional power grid: plants, feeders and meter readings.",
    tables=(
        Table(
            name="Plant",
            description="Generation plants.",
            columns=(
                Column("PlantID", "INTEGER", "plant id", is_primary=True),
                Column("Name", "TEXT", "plant name"),
                Column("FuelType", "TEXT", "primary fuel",
                       value_examples=("WIND ONSHORE", "SOLAR PV", "NATURAL GAS", "HYDRO RUN OF RIVER")),
                Column("Commissioned", "DATE", "commissioning date"),
                Column("CapacityMW", "REAL", "nameplate capacity in MW"),
            ),
        ),
        Table(
            name="Feeder",
            description="Distribution feeders attached to plants.",
            columns=(
                Column("FeederID", "INTEGER", "feeder id", is_primary=True),
                Column("PlantID", "INTEGER", "supplying plant"),
                Column("Region", "TEXT", "served region"),
                Column("VoltageKV", "INTEGER", "nominal voltage in kV"),
            ),
        ),
        Table(
            name="Reading",
            description="Hourly aggregate output readings per feeder.",
            columns=(
                Column("ReadingID", "INTEGER", "reading id", is_primary=True),
                Column("FeederID", "INTEGER", "measured feeder"),
                Column("Day", "DATE", "reading day"),
                Column("OutputMWh", "REAL", "energy delivered (nullable: telemetry gap)"),
                Column("PeakLoadMW", "REAL", "peak load during the day"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Feeder", "PlantID", "Plant", "PlantID"),
        ForeignKey("Reading", "FeederID", "Feeder", "FeederID"),
    ),
)

_FUELS = ("WIND ONSHORE", "SOLAR PV", "NATURAL GAS", "HYDRO RUN OF RIVER", "BIOMASS")
_REGIONS = ("NORTH VALLEY", "EAST MESA", "PORT DISTRICT", "HIGH PLAINS", "LAKESHORE")
_PLANT_WORDS = ("REDROCK", "BLUEWATER", "IRONWOOD", "SANDPIPER", "GRANITE",
                "FALCON RIDGE", "MIRROR LAKE", "COPPER CREEK")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    commissioned = common.random_dates(rng, 60, 1975, 2022)
    plants = [
        (pid, f"{common.pick(rng, _PLANT_WORDS)} STATION {pid}",
         common.pick(rng, _FUELS), commissioned[pid - 1],
         round(float(rng.uniform(5, 1400)), 1))
        for pid in range(1, 61)
    ]
    feeders = []
    fid = 1
    for pid in range(1, 61):
        for _ in range(int(rng.integers(1, 4))):
            feeders.append(
                (fid, pid, common.pick(rng, _REGIONS),
                 int(common.pick(rng, (11, 33, 66, 110))))
            )
            fid += 1
    readings = []
    days = common.random_dates(rng, 900, 2019, 2023)
    rid = 1
    for feeder in feeders:
        for _ in range(int(rng.integers(3, 10))):
            readings.append(
                (rid, feeder[0], days[rid % len(days)],
                 round(float(rng.uniform(1, 900)), 2) if rng.random() < 0.88 else None,
                 round(float(rng.uniform(0.5, 120)), 2))
            )
            rid += 1
    return {"Plant": plants, "Feeder": feeders, "Reading": readings}


TEMPLATES = (
    common.count_where_dirty(
        "count_fuel", "Plant", "FuelType",
        "How many plants run on {value}?",
    ),
    common.list_where_dirty(
        "plants_by_fuel", "Plant", "Name", "FuelType",
        "List the names of {value} plants.",
    ),
    common.numeric_agg_where(
        "avg_capacity_fuel", "Plant", "AVG", "CapacityMW", "FuelType",
        "What is the average nameplate capacity of {value} plants?",
    ),
    common.count_join_distinct(
        "plants_serving_region", "Plant", "PlantID", "Feeder", "Region",
        "How many different plants supply feeders in {value}?",
    ),
    common.date_year_count(
        "commissioned_since", "Plant", "Commissioned",
        "How many plants were commissioned in {year} or {direction}?",
        year_pool=(1980, 1985, 1990, 1995, 2000, 2005, 2010, 2015, 2018),
    ),
    common.superlative_nullable(
        "highest_output", "Reading", "FeederID", "OutputMWh",
        "Which feeder recorded the {rank}highest daily energy output?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.min_nullable(
        "lowest_output", "Reading", "FeederID", "OutputMWh",
        "Which feeder recorded the {rank}lowest measured daily output?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.group_top(
        "region_most_feeders", "Feeder", "Region",
        "Which region has the {rank}most feeders?",
        ranks=(1, 2, 3, 4),
    ),
    common.evidence_formula_count(
        "utility_scale", "Plant", "CapacityMW", "a utility-scale plant",
        100, 1000,
        "How many plants count as {term}?",
    ),
    common.multi_select_where(
        "name_and_capacity", "Plant", ("Name", "CapacityMW"), "FuelType",
        "Show the name and capacity of every {value} plant.",
    ),
    common.join_list_dirty(
        "fuels_by_region", "Plant", "FuelType", "Feeder", "Region",
        "List the distinct fuel types of plants supplying {value}.",
    ),
    common.join_superlative_dirty(
        "biggest_plant_region", "Plant", "Name", "Feeder", "Region",
        "Plant", "CapacityMW",
        "Among plants supplying {value}, which has the largest capacity?",
    ),
    common.group_having_count(
        "regions_many_feeders", "Feeder", "Region",
        "Which regions have at least {n} feeders?",
        thresholds=(15, 20, 25, 30),
    ),
    common.date_between_count(
        "commissioned_between", "Plant", "Commissioned",
        "How many plants were commissioned between {lo} and {hi}?",
    ),
    common.top_k_list(
        "top_outputs", "Reading", "FeederID", "OutputMWh",
        "List the feeders behind the {k} highest daily outputs.",
    ),
    common.count_not_equal(
        "not_fuel", "Plant", "FuelType",
        "How many plants do not run on {value}?",
    ),
    common.join_avg_dirty(
        "avg_output_by_region", "Reading", "OutputMWh", "Feeder", "Region",
        "What is the average daily energy output of feeders in {value}?",
    ),
    common.count_in_two(
        "count_two_fuels", "Plant", "FuelType",
        "How many plants run on either {value_a} or {value_b}?",
    ),
)

DOMAIN = DomainSpec(
    name="energy",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
