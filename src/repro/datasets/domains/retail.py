"""Retail domain — customers, products, orders and order lines."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="retail",
    description="An online retailer: customers, products, orders, line items.",
    tables=(
        Table(
            name="Customer",
            description="Registered customers.",
            columns=(
                Column("CustomerID", "INTEGER", "customer id", is_primary=True),
                Column("Name", "TEXT", "customer name, stored upper-case"),
                Column("Country", "TEXT", "country of residence"),
                Column("Joined", "DATE", "registration date"),
                Column("Segment", "TEXT", "marketing segment",
                       value_examples=("CONSUMER", "CORPORATE", "HOME OFFICE")),
            ),
        ),
        Table(
            name="Product",
            description="Catalogue products.",
            columns=(
                Column("ProductID", "INTEGER", "product id", is_primary=True),
                Column("Name", "TEXT", "product name"),
                Column("Category", "TEXT", "product category",
                       value_examples=("OFFICE SUPPLIES", "FURNITURE", "TECHNOLOGY")),
                Column("Price", "REAL", "unit price"),
                Column("Weight", "REAL", "shipping weight in kg (nullable: digital goods)"),
            ),
        ),
        Table(
            name="Orders",
            description="Order headers.",
            columns=(
                Column("OrderID", "INTEGER", "order id", is_primary=True),
                Column("CustomerID", "INTEGER", "ordering customer"),
                Column("OrderDate", "DATE", "order date"),
                Column("Status", "TEXT", "fulfilment status",
                       value_examples=("DELIVERED", "SHIPPED", "CANCELLED", "RETURNED")),
            ),
        ),
        Table(
            name="OrderLine",
            description="Line items of orders.",
            columns=(
                Column("LineID", "INTEGER", "line id", is_primary=True),
                Column("OrderID", "INTEGER", "owning order"),
                Column("ProductID", "INTEGER", "ordered product"),
                Column("Quantity", "INTEGER", "units ordered"),
                Column("Discount", "REAL", "fractional discount applied"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Orders", "CustomerID", "Customer", "CustomerID"),
        ForeignKey("OrderLine", "OrderID", "Orders", "OrderID"),
        ForeignKey("OrderLine", "ProductID", "Product", "ProductID"),
    ),
)

_COUNTRIES = ("UNITED STATES", "CANADA", "GERMANY", "BRAZIL", "JAPAN", "AUSTRALIA")
_CATEGORIES = ("OFFICE SUPPLIES", "FURNITURE", "TECHNOLOGY")
_SEGMENTS = ("CONSUMER", "CORPORATE", "HOME OFFICE")
_STATUSES = ("DELIVERED", "SHIPPED", "CANCELLED", "RETURNED")
_PRODUCT_WORDS = ("ERGO CHAIR", "DESK LAMP", "LASER PRINTER", "MONITOR STAND",
                  "WIRELESS MOUSE", "FILE CABINET", "STANDING DESK", "USB HUB",
                  "NOTEBOOK PACK", "MESH ROUTER", "LABEL MAKER", "WEBCAM PRO")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    names = common.person_names(rng, 180)
    joined = common.random_dates(rng, 180, 2010, 2022)
    customers = [
        (cid, names[cid - 1], common.pick(rng, _COUNTRIES),
         joined[cid - 1], common.pick(rng, _SEGMENTS))
        for cid in range(1, 181)
    ]
    products = [
        (pid, f"{common.pick(rng, _PRODUCT_WORDS)} {pid}",
         common.pick(rng, _CATEGORIES),
         round(float(rng.uniform(4, 1800)), 2),
         round(float(rng.uniform(0.1, 45)), 2) if rng.random() < 0.8 else None)
        for pid in range(1, 121)
    ]
    orders = []
    dates = common.random_dates(rng, 900, 2015, 2023)
    oid = 1
    for cid in range(1, 181):
        for _ in range(int(rng.integers(0, 7))):
            orders.append(
                (oid, cid, dates[oid % len(dates)], common.pick(rng, _STATUSES))
            )
            oid += 1
    lines = []
    line_id = 1
    for order in orders:
        for _ in range(int(rng.integers(1, 5))):
            lines.append(
                (line_id, order[0], int(rng.integers(1, 121)),
                 int(rng.integers(1, 12)),
                 round(float(common.pick(rng, (0.0, 0.0, 0.1, 0.2, 0.3))), 2))
            )
            line_id += 1
    return {
        "Customer": customers,
        "Product": products,
        "Orders": orders,
        "OrderLine": lines,
    }


TEMPLATES = (
    common.count_where_dirty(
        "count_country", "Customer", "Country",
        "How many customers live in {value}?",
    ),
    common.list_where_dirty(
        "products_in_category", "Product", "Name", "Category",
        "List the names of products in the {value} category.",
    ),
    common.numeric_agg_where(
        "avg_price_category", "Product", "AVG", "Price", "Category",
        "What is the average unit price of {value} products?",
    ),
    common.count_join_distinct(
        "customers_with_status", "Customer", "CustomerID", "Orders", "Status",
        "How many different customers have an order with status {value}?",
    ),
    common.date_year_count(
        "orders_after", "Orders", "OrderDate",
        "How many orders were placed in {year} or {direction}?",
        year_pool=(2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022),
    ),
    common.superlative_nullable(
        "heaviest_product", "Product", "Name", "Weight",
        "What is the name of the heaviest {value} product?",
        filter_column="Category",
    ),
    common.min_nullable(
        "lightest_product", "Product", "Name", "Weight",
        "What is the name of the lightest physical {value} product?",
        filter_column="Category",
    ),
    common.group_top(
        "segment_most_customers", "Customer", "Segment",
        "Which marketing segment has the {rank}most customers?",
        ranks=(1, 2, 3),
    ),
    common.evidence_formula_count(
        "premium_products", "Product", "Price", "a premium product",
        800, 1800,
        "How many catalogue items count as {term}?",
    ),
    common.multi_select_where(
        "name_and_joined", "Customer", ("Name", "Joined"), "Segment",
        "Show the name and registration date of each {value} customer.",
    ),
    common.join_list_dirty(
        "countries_by_status", "Customer", "Country", "Orders", "Status",
        "List the distinct countries of customers with a {value} order.",
    ),
    common.join_superlative_dirty(
        "priciest_ordered", "Product", "Name", "Orders", "Status",
        "Product", "Price",
        "Among products appearing in {value} orders, which is the most expensive?",
    ),
    common.group_having_count(
        "countries_many_customers", "Customer", "Country",
        "Which countries have at least {n} customers?",
    ),
    common.date_between_count(
        "joined_between", "Customer", "Joined",
        "How many customers registered between {lo} and {hi}?",
        year_pairs=((2011, 2015), (2013, 2017), (2015, 2019), (2012, 2020),
                    (2014, 2018), (2016, 2021), (2010, 2014), (2017, 2022),
                    (2011, 2019), (2013, 2021)),
    ),
    common.top_k_list(
        "heaviest_products", "Product", "Name", "Weight",
        "List the {k} heaviest products.",
    ),
    common.count_not_equal(
        "not_segment", "Customer", "Segment",
        "How many customers are not in the {value} segment?",
    ),
    common.count_two_filters(
        "country_and_segment", "Customer", "Country", "Segment",
        "How many customers live in {value_a} and belong to the {value_b} "
        "segment?",
    ),
    common.join_avg_dirty(
        "avg_price_by_status", "Product", "Price", "Orders", "Status",
        "What is the average unit price of products appearing in {value} "
        "orders?",
    ),
    common.count_in_two(
        "count_two_statuses", "Orders", "Status",
        "How many orders are either {value_a} or {value_b}?",
    ),
)

DOMAIN = DomainSpec(
    name="retail",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
