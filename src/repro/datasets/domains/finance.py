"""Finance domain — clients, accounts, loans and card transactions
(modelled after BIRD's financial database)."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="finance",
    description="Bank clients, their accounts, loans and card transactions.",
    tables=(
        Table(
            name="Client",
            description="Bank clients.",
            columns=(
                Column("ClientID", "INTEGER", "client identifier", is_primary=True),
                Column("Name", "TEXT", "client full name, stored upper-case"),
                Column("Gender", "TEXT", "F or M"),
                Column("BirthDate", "DATE", "client date of birth"),
                Column("Region", "TEXT", "home region"),
            ),
        ),
        Table(
            name="Account",
            description="Accounts, each owned by one client.",
            columns=(
                Column("AccountID", "INTEGER", "account identifier", is_primary=True),
                Column("ClientID", "INTEGER", "owning client"),
                Column("Opened", "DATE", "account opening date"),
                Column("Frequency", "TEXT", "statement frequency",
                       value_examples=("MONTHLY ISSUANCE", "WEEKLY ISSUANCE", "AFTER TRANSACTION")),
                Column("Balance", "REAL", "current balance"),
            ),
        ),
        Table(
            name="Loan",
            description="Loans granted against accounts.",
            columns=(
                Column("LoanID", "INTEGER", "loan identifier", is_primary=True),
                Column("AccountID", "INTEGER", "backing account"),
                Column("Granted", "DATE", "grant date"),
                Column("Amount", "REAL", "loan principal"),
                Column("Duration", "INTEGER", "months to maturity"),
                Column("Status", "TEXT", "repayment status",
                       value_examples=("RUNNING OK", "RUNNING DEBT", "FINISHED OK", "FINISHED DEBT")),
            ),
        ),
        Table(
            name="CardTransaction",
            description="Card transactions on accounts.",
            columns=(
                Column("TransactionID", "INTEGER", "transaction id", is_primary=True),
                Column("AccountID", "INTEGER", "charged account"),
                Column("Date", "DATE", "transaction date"),
                Column("Amount", "REAL", "transaction amount (nullable: pending)"),
                Column("Merchant", "TEXT", "merchant category"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Account", "ClientID", "Client", "ClientID"),
        ForeignKey("Loan", "AccountID", "Account", "AccountID"),
        ForeignKey("CardTransaction", "AccountID", "Account", "AccountID"),
    ),
)

_REGIONS = ("NORTH BOHEMIA", "SOUTH MORAVIA", "CENTRAL PLAINS", "EAST HIGHLANDS", "WEST COAST")
_MERCHANTS = ("GROCERY", "FUEL", "RESTAURANT", "TRAVEL", "ELECTRONICS", "PHARMACY")
_FREQUENCIES = ("MONTHLY ISSUANCE", "WEEKLY ISSUANCE", "AFTER TRANSACTION")
_STATUSES = ("RUNNING OK", "RUNNING DEBT", "FINISHED OK", "FINISHED DEBT")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    names = common.person_names(rng, 200)
    births = common.random_dates(rng, 200, 1940, 2002)
    clients = [
        (cid, names[cid - 1], "F" if rng.random() < 0.5 else "M",
         births[cid - 1], common.pick(rng, _REGIONS))
        for cid in range(1, 201)
    ]
    accounts = []
    opened = common.random_dates(rng, 400, 1993, 2020)
    aid = 1
    for cid in range(1, 201):
        for _ in range(int(rng.integers(1, 4))):
            accounts.append(
                (aid, cid, opened[aid % len(opened)],
                 common.pick(rng, _FREQUENCIES),
                 round(float(rng.uniform(-2000, 90000)), 2))
            )
            aid += 1
    loans = []
    granted = common.random_dates(rng, 300, 1995, 2020)
    lid = 1
    for account in accounts:
        if rng.random() < 0.35:
            loans.append(
                (lid, account[0], granted[lid % len(granted)],
                 round(float(rng.uniform(5000, 500000)), 0),
                 int(common.pick(rng, (12, 24, 36, 48, 60))),
                 common.pick(rng, _STATUSES))
            )
            lid += 1
    transactions = []
    tdates = common.random_dates(rng, 1000, 2015, 2021)
    tid = 1
    for account in accounts:
        for _ in range(int(rng.integers(0, 8))):
            transactions.append(
                (tid, account[0], tdates[tid % len(tdates)],
                 round(float(rng.uniform(2, 4000)), 2) if rng.random() < 0.93 else None,
                 common.pick(rng, _MERCHANTS))
            )
            tid += 1
    return {
        "Client": clients,
        "Account": accounts,
        "Loan": loans,
        "CardTransaction": transactions,
    }


TEMPLATES = (
    common.count_where_dirty(
        "count_status", "Loan", "Status",
        "How many loans have the status {value}?",
    ),
    common.list_where_dirty(
        "clients_in_region", "Client", "Name", "Region",
        "List the names of clients living in {value}.",
    ),
    common.numeric_agg_where(
        "avg_loan_by_status", "Loan", "AVG", "Amount", "Status",
        "What is the average principal of loans with status {value}?",
    ),
    common.count_join_distinct(
        "clients_with_frequency", "Client", "ClientID", "Account", "Frequency",
        "How many different clients hold an account with {value} statements?",
    ),
    common.date_year_count(
        "accounts_opened", "Account", "Opened",
        "How many accounts were opened in {year} or {direction}?",
        year_pool=(1995, 1997, 1999, 2001, 2003, 2005, 2007, 2009, 2011, 2013, 2015),
    ),
    common.superlative_nullable(
        "largest_transaction", "CardTransaction", "AccountID", "Amount",
        "Which account made the largest card transaction at a {value} merchant?",
        filter_column="Merchant",
    ),
    common.min_nullable(
        "smallest_transaction", "CardTransaction", "AccountID", "Amount",
        "Which account made the smallest settled card transaction at a "
        "{value} merchant?",
        filter_column="Merchant",
    ),
    common.group_top(
        "region_most_clients", "Client", "Region",
        "Which region has the {rank}most clients?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.evidence_formula_count(
        "large_loans", "Loan", "Amount", "a large loan",
        200000, 450000,
        "How many loans count as {term}?",
    ),
    common.multi_select_where(
        "name_and_birth", "Client", ("Name", "BirthDate"), "Region",
        "Give the name and birth date of every client in {value}.",
    ),
    common.join_list_dirty(
        "regions_with_status", "Client", "Region", "Loan", "Status",
        "List the distinct regions of clients holding a loan with status {value}.",
    ),
    common.join_superlative_dirty(
        "richest_by_frequency", "Client", "Name", "Account", "Frequency",
        "Account", "Balance",
        "Among accounts with {value} statements, which client owns the one "
        "with the highest balance?",
    ),
    common.group_having_count(
        "regions_many_clients", "Client", "Region",
        "Which regions have at least {n} clients?",
    ),
    common.date_between_count(
        "opened_between", "Account", "Opened",
        "How many accounts were opened between {lo} and {hi}?",
    ),
    common.top_k_list(
        "top_balances", "Account", "AccountID", "Balance",
        "List the {k} accounts with the highest balance.",
    ),
    common.count_not_equal(
        "not_status", "Loan", "Status",
        "How many loans do not have the status {value}?",
    ),
    common.count_two_filters(
        "gender_and_region", "Client", "Gender", "Region",
        "How many clients have gender {value_a} and live in {value_b}?",
    ),
    common.join_avg_dirty(
        "avg_txn_by_frequency", "CardTransaction", "Amount", "Account", "Frequency",
        "What is the average card transaction amount on accounts with "
        "{value} statements?",
    ),
)

DOMAIN = DomainSpec(
    name="finance",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
