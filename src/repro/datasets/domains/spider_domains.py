"""Spider-like domains: many small, clean databases with simpler questions.

Spider's profile differs from BIRD's in exactly the ways that matter for
the paper's Table 3: smaller schemas, no dirty values (``clean=True``
mentions), fewer evidence-dependent tricks, and a difficulty mix skewed to
simple/moderate.  Six compact domains live here.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

__all__ = ["SPIDER_DOMAINS"]


# ------------------------------------------------------------------- pets

_PETS = Database(
    name="pets",
    description="Pet owners and their pets.",
    tables=(
        Table(
            name="Owner",
            columns=(
                Column("OwnerID", "INTEGER", "owner id", is_primary=True),
                Column("Name", "TEXT", "owner name"),
                Column("City", "TEXT", "city of residence"),
            ),
        ),
        Table(
            name="Pet",
            columns=(
                Column("PetID", "INTEGER", "pet id", is_primary=True),
                Column("OwnerID", "INTEGER", "owning person"),
                Column("Species", "TEXT", "species", value_examples=("Dog", "Cat", "Parrot")),
                Column("Age", "INTEGER", "age in years"),
                Column("Weight", "REAL", "weight in kg (nullable)"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Pet", "OwnerID", "Owner", "OwnerID"),),
)


def _populate_pets(rng: np.random.Generator) -> dict[str, list[tuple]]:
    cities = ("Austin", "Boulder", "Chicago", "Denver", "Eugene", "Fresno",
              "Gainesville", "Helena", "Irvine", "Juneau")
    names = [n.title() for n in common.person_names(rng, 60)]
    owners = [
        (oid, names[oid - 1], common.pick(rng, cities)) for oid in range(1, 61)
    ]
    species = ("Dog", "Cat", "Parrot", "Rabbit", "Hamster", "Gecko",
               "Turtle", "Ferret", "Canary", "Goldfish")
    pets = []
    pid = 1
    for oid in range(1, 61):
        for _ in range(int(rng.integers(1, 4))):
            pets.append(
                (pid, oid, common.pick(rng, species), int(rng.integers(1, 18)),
                 round(float(rng.uniform(0.4, 55)), 1) if rng.random() < 0.9 else None)
            )
            pid += 1
    return {"Owner": owners, "Pet": pets}


_PETS_TEMPLATES = (
    common.count_not_equal(
        "count_not_species", "Pet", "Species",
        "How many pets are not {value}s?", clean=True,
    ),
    common.group_having_count(
        "popular_species", "Pet", "Species",
        "Which species have at least {n} pets?",
        thresholds=(8, 10, 12, 15),
    ),

    common.count_where_dirty(
        "count_species", "Pet", "Species",
        "How many pets are {value}s?", clean=True,
    ),
    common.list_where_dirty(
        "owners_in_city", "Owner", "Name", "City",
        "List the names of owners living in {value}.", clean=True,
    ),
    common.numeric_agg_where(
        "avg_age_species", "Pet", "AVG", "Age", "Species",
        "What is the average age of {value} pets?", clean=True,
    ),
    common.count_join_distinct(
        "owners_of_species", "Owner", "OwnerID", "Pet", "Species",
        "How many different owners have a {value}?", clean=True,
    ),
    common.superlative_nullable(
        "heaviest_pet", "Pet", "PetID", "Weight",
        "Which {value} is the heaviest?",
        filter_column="Species", clean=True,
    ),
    common.group_top(
        "city_most_owners", "Owner", "City",
        "Which city has the {rank}most pet owners?",
        ranks=(1, 2, 3, 4),
    ),
)


# ---------------------------------------------------------------- concerts

_CONCERTS = Database(
    name="concerts",
    description="Singers and the concerts they performed.",
    tables=(
        Table(
            name="Singer",
            columns=(
                Column("SingerID", "INTEGER", "singer id", is_primary=True),
                Column("Name", "TEXT", "singer name"),
                Column("Country", "TEXT", "home country"),
                Column("Age", "INTEGER", "age in years"),
            ),
        ),
        Table(
            name="Concert",
            columns=(
                Column("ConcertID", "INTEGER", "concert id", is_primary=True),
                Column("SingerID", "INTEGER", "headliner"),
                Column("Venue", "TEXT", "venue name"),
                Column("Year", "INTEGER", "concert year"),
                Column("Attendance", "INTEGER", "tickets sold (nullable)"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Concert", "SingerID", "Singer", "SingerID"),),
)


def _populate_concerts(rng: np.random.Generator) -> dict[str, list[tuple]]:
    countries = ("France", "Netherlands", "United States", "Japan",
                 "Mexico", "Ghana", "Portugal", "Iceland", "Chile", "Vietnam")
    venues = ("Grand Arena", "Sky Hall", "River Stage", "Fort Amphitheatre",
              "Union Theatre", "Cedar Bowl", "Lakeside Pavilion",
              "Granite Hall", "Sunset Dome", "Harbor Stage")
    names = [n.title() for n in common.person_names(rng, 40)]
    singers = [
        (sid, names[sid - 1], common.pick(rng, countries), int(rng.integers(19, 70)))
        for sid in range(1, 41)
    ]
    concerts = []
    cid = 1
    for sid in range(1, 41):
        for _ in range(int(rng.integers(1, 5))):
            concerts.append(
                (cid, sid, common.pick(rng, venues), int(rng.integers(2010, 2024)),
                 int(rng.integers(200, 60000)) if rng.random() < 0.9 else None)
            )
            cid += 1
    return {"Singer": singers, "Concert": concerts}


_CONCERTS_TEMPLATES = (
    common.count_not_equal(
        "count_not_country", "Singer", "Country",
        "How many singers are not from {value}?", clean=True,
    ),
    common.group_having_count(
        "busy_years", "Concert", "Year",
        "Which years had at least {n} concerts?",
        thresholds=(4, 5, 6, 7),
    ),

    common.count_where_dirty(
        "count_country", "Singer", "Country",
        "How many singers are from {value}?", clean=True,
    ),
    common.list_where_dirty(
        "singers_from", "Singer", "Name", "Country",
        "What are the names of singers from {value}?", clean=True,
    ),
    common.numeric_agg_where(
        "avg_age_country", "Singer", "AVG", "Age", "Country",
        "What is the average age of singers from {value}?", clean=True,
    ),
    common.count_join_distinct(
        "singers_at_venue", "Singer", "SingerID", "Concert", "Venue",
        "How many different singers performed at {value}?", clean=True,
    ),
    common.superlative_nullable(
        "biggest_concert", "Concert", "Venue", "Attendance",
        "Which venue hosted the best attended concert of {value}?",
        filter_column="Year", clean=True,
    ),
    common.group_top(
        "busiest_venue", "Concert", "Venue",
        "Which venue hosted the {rank}most concerts?",
        ranks=(1, 2, 3, 4),
    ),
)


# ------------------------------------------------------------------ flights

_FLIGHTS = Database(
    name="flights",
    description="Airlines, airports and flights.",
    tables=(
        Table(
            name="Airline",
            columns=(
                Column("AirlineID", "INTEGER", "airline id", is_primary=True),
                Column("Name", "TEXT", "airline name"),
                Column("Country", "TEXT", "country of registration"),
            ),
        ),
        Table(
            name="Flight",
            columns=(
                Column("FlightID", "INTEGER", "flight id", is_primary=True),
                Column("AirlineID", "INTEGER", "operating airline"),
                Column("Origin", "TEXT", "origin airport code"),
                Column("Destination", "TEXT", "destination airport code"),
                Column("DistanceKm", "INTEGER", "great-circle distance"),
                Column("DelayMin", "INTEGER", "arrival delay in minutes (nullable)"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Flight", "AirlineID", "Airline", "AirlineID"),),
)


def _populate_flights(rng: np.random.Generator) -> dict[str, list[tuple]]:
    countries = ("Spain", "Brazil", "India", "Norway", "Kenya", "Peru",
                 "Finland", "Thailand", "Egypt", "Canada")
    airline_names = ("Aurora Air", "Cloudline", "Meridian Wings", "Polar Jet",
                     "Sunway Express", "Vista Airways", "Nimbus Air",
                     "Zephyr Lines", "Condor Link", "Equator Jet")
    airlines = [
        (aid, airline_names[aid - 1], common.pick(rng, countries))
        for aid in range(1, 11)
    ]
    codes = ("AAX", "BBY", "CCZ", "DDQ", "EER", "FFT", "GGU", "HHV",
             "IIW", "JJM", "KKN", "LLP")
    flights = []
    fid = 1
    for _ in range(400):
        origin = common.pick(rng, codes)
        dest = common.pick(rng, [c for c in codes if c != origin])
        flights.append(
            (fid, int(rng.integers(1, 11)), origin, dest,
             int(rng.integers(180, 9000)),
             int(rng.integers(-15, 240)) if rng.random() < 0.85 else None)
        )
        fid += 1
    return {"Airline": airlines, "Flight": flights}


_FLIGHTS_TEMPLATES = (
    common.count_not_equal(
        "count_not_dest", "Flight", "Destination",
        "How many flights do not land at {value}?", clean=True,
    ),
    common.group_having_count(
        "busy_destinations", "Flight", "Destination",
        "Which destinations receive at least {n} flights?",
        thresholds=(25, 30, 35, 40),
    ),

    common.count_where_dirty(
        "count_origin", "Flight", "Origin",
        "How many flights depart from {value}?", clean=True,
    ),
    common.list_where_dirty(
        "airlines_in_country", "Airline", "Name", "Country",
        "List the airlines registered in {value}.", clean=True,
    ),
    common.numeric_agg_where(
        "avg_distance_origin", "Flight", "AVG", "DistanceKm", "Origin",
        "What is the average distance of flights departing {value}?", clean=True,
    ),
    common.count_join_distinct(
        "airlines_serving", "Airline", "AirlineID", "Flight", "Destination",
        "How many different airlines fly into {value}?", clean=True,
    ),
    common.superlative_nullable(
        "most_delayed", "Flight", "FlightID", "DelayMin",
        "Which flight from {value} had the longest arrival delay?",
        filter_column="Origin", clean=True,
    ),
    common.group_top(
        "busiest_origin", "Flight", "Origin",
        "Which airport code has the {rank}most departing flights?",
        ranks=(1, 2, 3, 4),
    ),
)


# ---------------------------------------------------------------- employees

_EMPLOYEES = Database(
    name="employees",
    description="Company departments and employees.",
    tables=(
        Table(
            name="Department",
            columns=(
                Column("DeptID", "INTEGER", "department id", is_primary=True),
                Column("Name", "TEXT", "department name"),
                Column("Building", "TEXT", "office building"),
            ),
        ),
        Table(
            name="Employee",
            columns=(
                Column("EmpID", "INTEGER", "employee id", is_primary=True),
                Column("DeptID", "INTEGER", "department"),
                Column("Name", "TEXT", "employee name"),
                Column("Title", "TEXT", "job title"),
                Column("Salary", "REAL", "annual salary"),
                Column("Bonus", "REAL", "last bonus (nullable)"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Employee", "DeptID", "Department", "DeptID"),),
)


def _populate_employees(rng: np.random.Generator) -> dict[str, list[tuple]]:
    dept_names = ("Engineering", "Marketing", "Finance", "Operations",
                  "Legal", "Research", "Support", "Design")
    buildings = ("North Tower", "South Tower", "Annex", "East Wing",
                 "Harbor Office", "Midtown Hub")
    departments = [
        (did, dept_names[did - 1], common.pick(rng, buildings))
        for did in range(1, 9)
    ]
    titles = ("Analyst", "Manager", "Director", "Specialist", "Coordinator",
              "Architect", "Planner", "Auditor", "Engineer", "Recruiter")
    names = [n.title() for n in common.person_names(rng, 150)]
    employees = [
        (eid, int(rng.integers(1, 9)), names[eid - 1], common.pick(rng, titles),
         round(float(rng.uniform(42000, 230000)), 0),
         round(float(rng.uniform(1000, 40000)), 0) if rng.random() < 0.7 else None)
        for eid in range(1, 151)
    ]
    return {"Department": departments, "Employee": employees}


_EMPLOYEES_TEMPLATES = (
    common.count_not_equal(
        "count_not_title", "Employee", "Title",
        "How many employees do not hold the title {value}?", clean=True,
    ),
    common.group_having_count(
        "common_titles", "Employee", "Title",
        "Which job titles are held by at least {n} employees?",
        thresholds=(10, 12, 15, 18),
    ),

    common.count_where_dirty(
        "count_title", "Employee", "Title",
        "How many employees hold the title {value}?", clean=True,
    ),
    common.list_where_dirty(
        "employees_with_title", "Employee", "Name", "Title",
        "List the names of employees with the title {value}.", clean=True,
    ),
    common.numeric_agg_where(
        "avg_salary_title", "Employee", "AVG", "Salary", "Title",
        "What is the average salary of employees titled {value}?", clean=True,
    ),
    common.count_join_distinct(
        "depts_in_building", "Employee", "EmpID", "Department", "Building",
        "How many different employees work in {value}?", clean=True,
    ),
    common.superlative_nullable(
        "biggest_bonus", "Employee", "Name", "Bonus",
        "Which {value} received the biggest bonus?",
        filter_column="Title", clean=True,
    ),
    common.group_top(
        "largest_department", "Employee", "DeptID",
        "Which department id has the {rank}most employees?",
        ranks=(1, 2, 3, 4),
    ),
)


# --------------------------------------------------------------- restaurants

_RESTAURANTS = Database(
    name="restaurants",
    description="Restaurants and health inspections.",
    tables=(
        Table(
            name="Restaurant",
            columns=(
                Column("RestID", "INTEGER", "restaurant id", is_primary=True),
                Column("Name", "TEXT", "restaurant name"),
                Column("Cuisine", "TEXT", "cuisine type"),
                Column("Neighborhood", "TEXT", "neighborhood"),
            ),
        ),
        Table(
            name="Inspection",
            columns=(
                Column("InspID", "INTEGER", "inspection id", is_primary=True),
                Column("RestID", "INTEGER", "inspected restaurant"),
                Column("Year", "INTEGER", "inspection year"),
                Column("Score", "INTEGER", "inspection score 0-100 (nullable)"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Inspection", "RestID", "Restaurant", "RestID"),),
)


def _populate_restaurants(rng: np.random.Generator) -> dict[str, list[tuple]]:
    cuisines = ("Italian", "Thai", "Mexican", "Ethiopian", "Diner",
                "Korean", "Lebanese", "Vegan", "Seafood", "Peruvian")
    hoods = ("Midtown", "Old Port", "Lakeside", "Gallery District",
             "Brewery Row", "Chinatown", "Riverwalk", "Summit Park")
    words = ("Lucky", "Golden", "Blue", "Corner", "Garden", "Royal")
    nouns = ("Spoon", "Table", "Lantern", "Kettle", "Olive", "Harbor")
    restaurants = [
        (rid, f"{common.pick(rng, words)} {common.pick(rng, nouns)} {rid}",
         common.pick(rng, cuisines), common.pick(rng, hoods))
        for rid in range(1, 81)
    ]
    inspections = []
    iid = 1
    for rid in range(1, 81):
        for year in (2018, 2019, 2020, 2021, 2022, 2023):
            if rng.random() < 0.25:
                continue
            inspections.append(
                (iid, rid, year,
                 int(rng.integers(55, 101)) if rng.random() < 0.92 else None)
            )
            iid += 1
    return {"Restaurant": restaurants, "Inspection": inspections}


_RESTAURANTS_TEMPLATES = (
    common.count_not_equal(
        "count_not_cuisine", "Restaurant", "Cuisine",
        "How many restaurants do not serve {value} food?", clean=True,
    ),
    common.group_having_count(
        "big_cuisines", "Restaurant", "Cuisine",
        "Which cuisines have at least {n} restaurants?",
        thresholds=(5, 6, 8, 10),
    ),

    common.count_where_dirty(
        "count_cuisine", "Restaurant", "Cuisine",
        "How many restaurants serve {value} food?", clean=True,
    ),
    common.list_where_dirty(
        "restaurants_in_hood", "Restaurant", "Name", "Neighborhood",
        "List the restaurants in {value}.", clean=True,
    ),
    common.numeric_agg_where(
        "avg_score_year", "Inspection", "AVG", "Score", "Year",
        "What was the average inspection score in {value}?", clean=True,
    ),
    common.count_join_distinct(
        "inspected_cuisines", "Inspection", "InspID", "Restaurant", "Cuisine",
        "How many inspections were performed at {value} restaurants?", clean=True,
    ),
    common.superlative_nullable(
        "best_inspection", "Inspection", "RestID", "Score",
        "Which restaurant received the highest inspection score of {value}?",
        filter_column="Year", clean=True,
    ),
    common.group_top(
        "hood_most_restaurants", "Restaurant", "Neighborhood",
        "Which neighborhood has the {rank}most restaurants?",
        ranks=(1, 2, 3, 4),
    ),
)


# ------------------------------------------------------------------ courses

_COURSES = Database(
    name="courses",
    description="University courses and enrollments.",
    tables=(
        Table(
            name="Course",
            columns=(
                Column("CourseID", "INTEGER", "course id", is_primary=True),
                Column("Title", "TEXT", "course title"),
                Column("Department", "TEXT", "offering department"),
                Column("Credits", "INTEGER", "credit hours"),
            ),
        ),
        Table(
            name="Student",
            columns=(
                Column("StudentID", "INTEGER", "student id", is_primary=True),
                Column("Name", "TEXT", "student name"),
                Column("Major", "TEXT", "declared major"),
            ),
        ),
        Table(
            name="Enrollment",
            columns=(
                Column("EnrollID", "INTEGER", "enrollment id", is_primary=True),
                Column("CourseID", "INTEGER", "course"),
                Column("StudentID", "INTEGER", "student"),
                Column("Grade", "REAL", "grade points 0-4 (nullable: in progress)"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Enrollment", "CourseID", "Course", "CourseID"),
        ForeignKey("Enrollment", "StudentID", "Student", "StudentID"),
    ),
)


def _populate_courses(rng: np.random.Generator) -> dict[str, list[tuple]]:
    departments = ("Mathematics", "History", "Biology", "Computer Science",
                   "Philosophy", "Economics", "Chemistry", "Linguistics")
    majors = ("Mathematics", "History", "Biology", "Computer Science",
              "Philosophy", "Economics", "Chemistry", "Linguistics",
              "Undeclared")
    subjects = ("Intro to", "Advanced", "Topics in", "Seminar on")
    courses = [
        (cid, f"{common.pick(rng, subjects)} {common.pick(rng, departments)} {cid}",
         common.pick(rng, departments), int(common.pick(rng, (2, 3, 4))))
        for cid in range(1, 61)
    ]
    names = [n.title() for n in common.person_names(rng, 120)]
    students = [
        (sid, names[sid - 1], common.pick(rng, majors)) for sid in range(1, 121)
    ]
    enrollments = []
    eid = 1
    for sid in range(1, 121):
        for _ in range(int(rng.integers(1, 6))):
            enrollments.append(
                (eid, int(rng.integers(1, 61)), sid,
                 round(float(rng.uniform(0, 4)), 1) if rng.random() < 0.85 else None)
            )
            eid += 1
    return {"Course": courses, "Student": students, "Enrollment": enrollments}


_COURSES_TEMPLATES = (
    common.count_not_equal(
        "count_not_major", "Student", "Major",
        "How many students are not majoring in {value}?", clean=True,
    ),
    common.group_having_count(
        "big_departments", "Course", "Department",
        "Which departments offer at least {n} courses?",
        thresholds=(5, 6, 7, 8),
    ),

    common.count_where_dirty(
        "count_department", "Course", "Department",
        "How many courses does the {value} department offer?", clean=True,
    ),
    common.list_where_dirty(
        "students_by_major", "Student", "Name", "Major",
        "List the names of students majoring in {value}.", clean=True,
    ),
    common.numeric_agg_where(
        "avg_credits_dept", "Course", "AVG", "Credits", "Department",
        "What is the average credit value of {value} courses?", clean=True,
    ),
    common.count_join_distinct(
        "students_in_dept_courses", "Student", "StudentID", "Course", "Department",
        "How many different students enrolled in {value} courses?", clean=True,
    ),
    common.superlative_nullable(
        "best_grade", "Enrollment", "StudentID", "Grade",
        "Which student earned the {rank}highest recorded grade?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.group_top(
        "dept_most_courses", "Course", "Department",
        "Which department offers the {rank}most courses?",
        ranks=(1, 2, 3, 4),
    ),
)


SPIDER_DOMAINS = [
    DomainSpec("pets", _PETS, _populate_pets, _PETS_TEMPLATES, _PETS.description),
    DomainSpec("concerts", _CONCERTS, _populate_concerts, _CONCERTS_TEMPLATES, _CONCERTS.description),
    DomainSpec("flights", _FLIGHTS, _populate_flights, _FLIGHTS_TEMPLATES, _FLIGHTS.description),
    DomainSpec("employees", _EMPLOYEES, _populate_employees, _EMPLOYEES_TEMPLATES, _EMPLOYEES.description),
    DomainSpec("restaurants", _RESTAURANTS, _populate_restaurants, _RESTAURANTS_TEMPLATES, _RESTAURANTS.description),
    DomainSpec("courses", _COURSES, _populate_courses, _COURSES_TEMPLATES, _COURSES.description),
]
