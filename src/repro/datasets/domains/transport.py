"""Transport domain — stations, bike-share rides and maintenance."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="transport",
    description="A city bike-share system: stations, bikes and rides.",
    tables=(
        Table(
            name="Station",
            description="Docking stations.",
            columns=(
                Column("StationID", "INTEGER", "station id", is_primary=True),
                Column("Name", "TEXT", "station name"),
                Column("District", "TEXT", "city district"),
                Column("Docks", "INTEGER", "number of docks"),
                Column("Installed", "DATE", "installation date"),
            ),
        ),
        Table(
            name="Bike",
            description="Fleet bikes.",
            columns=(
                Column("BikeID", "INTEGER", "bike id", is_primary=True),
                Column("Model", "TEXT", "bike model",
                       value_examples=("CITY CRUISER", "E ASSIST", "CARGO TRIKE")),
                Column("Commissioned", "DATE", "date entered service"),
                Column("Mileage", "REAL", "odometer km (nullable: sensor fault)"),
            ),
        ),
        Table(
            name="Ride",
            description="Completed rides.",
            columns=(
                Column("RideID", "INTEGER", "ride id", is_primary=True),
                Column("BikeID", "INTEGER", "bike used"),
                Column("StartStationID", "INTEGER", "origin station"),
                Column("StartTime", "DATE", "ride start date"),
                Column("DurationMin", "INTEGER", "ride duration in minutes"),
                Column("MemberType", "TEXT", "rider type",
                       value_examples=("ANNUAL MEMBER", "DAY PASS", "SINGLE TRIP")),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Ride", "BikeID", "Bike", "BikeID"),
        ForeignKey("Ride", "StartStationID", "Station", "StationID"),
    ),
)

_DISTRICTS = ("OLD TOWN", "HARBOR FRONT", "UNIVERSITY HILL", "MARKET SQUARE", "GREENBELT")
_MODELS = ("CITY CRUISER", "E ASSIST", "CARGO TRIKE")
_MEMBERS = ("ANNUAL MEMBER", "DAY PASS", "SINGLE TRIP")
_STATION_WORDS = ("MAPLE", "STATION", "CENTRAL", "ELM", "DOCKSIDE", "CANAL",
                  "MUSEUM", "STADIUM", "TERRACE", "FOUNTAIN")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    installed = common.random_dates(rng, 60, 2012, 2021)
    stations = [
        (sid, f"{common.pick(rng, _STATION_WORDS)} ST {sid}",
         common.pick(rng, _DISTRICTS), int(rng.integers(8, 40)),
         installed[sid - 1])
        for sid in range(1, 61)
    ]
    commissioned = common.random_dates(rng, 150, 2014, 2022)
    bikes = [
        (bid, common.pick(rng, _MODELS), commissioned[bid - 1],
         round(float(rng.uniform(50, 18000)), 1) if rng.random() < 0.85 else None)
        for bid in range(1, 151)
    ]
    rides = []
    starts = common.random_dates(rng, 1500, 2018, 2023)
    ride_id = 1
    for _ in range(1800):
        rides.append(
            (ride_id, int(rng.integers(1, 151)), int(rng.integers(1, 61)),
             starts[ride_id % len(starts)], int(rng.integers(2, 120)),
             common.pick(rng, _MEMBERS))
        )
        ride_id += 1
    return {"Station": stations, "Bike": bikes, "Ride": rides}


TEMPLATES = (
    common.count_where_dirty(
        "count_district", "Station", "District",
        "How many stations are in the {value} district?",
    ),
    common.list_where_dirty(
        "stations_in_district", "Station", "Name", "District",
        "List the names of stations in the {value} district.",
    ),
    common.numeric_agg_where(
        "avg_duration_member", "Ride", "AVG", "DurationMin", "MemberType",
        "What is the average ride duration in minutes for {value} riders?",
    ),
    common.count_join_distinct(
        "bikes_from_district", "Bike", "BikeID", "Station", "District",
        "How many different bikes started a ride in the {value} district?",
    ),
    common.date_year_count(
        "stations_installed", "Station", "Installed",
        "How many stations were installed in {year} or {direction}?",
        year_pool=(2013, 2014, 2015, 2016, 2017, 2018, 2019, 2020, 2021),
    ),
    common.superlative_nullable(
        "highest_mileage", "Bike", "BikeID", "Mileage",
        "Which {value} bike has the highest recorded mileage?",
        filter_column="Model",
    ),
    common.min_nullable(
        "lowest_mileage", "Bike", "BikeID", "Mileage",
        "Which {value} bike has the lowest recorded mileage?",
        filter_column="Model",
    ),
    common.group_top(
        "district_most_stations", "Station", "District",
        "Which district has the {rank}most stations?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.evidence_formula_count(
        "long_rides", "Ride", "DurationMin", "a long ride",
        60, 120,
        "How many rides count as {term}?",
    ),
    common.multi_select_where(
        "name_and_docks", "Station", ("Name", "Docks"), "District",
        "Show the name and dock count of each station in the {value} district.",
    ),
    common.join_list_dirty(
        "models_by_member", "Bike", "Model", "Ride", "MemberType",
        "List the distinct bike models ridden by {value} riders.",
    ),
    common.join_superlative_dirty(
        "longest_ride_model", "Bike", "BikeID", "Bike", "Model",
        "Ride", "DurationMin",
        "Among {value} bikes, which one was used for the longest ride?",
    ),
)

DOMAIN = DomainSpec(
    name="transport",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
