"""Synthetic benchmark domains.

Each module defines one :class:`~repro.datasets.build.DomainSpec`: a schema
with foreign keys and descriptions, a seeded data population, and question
templates instantiated from the shared factories in ``common.py``.
"""

from repro.datasets.domains import common

__all__ = ["common"]
