"""Hockey domain — teams, players and game appearances (BIRD covers
professional hockey among its 37 domains)."""

from __future__ import annotations

import numpy as np

from repro.datasets.build import DomainSpec
from repro.datasets.domains import common
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="hockey",
    description="Ice-hockey teams, rosters and per-season player statistics.",
    tables=(
        Table(
            name="Team",
            description="Franchises.",
            columns=(
                Column("TeamID", "INTEGER", "team identifier", is_primary=True),
                Column("Name", "TEXT", "franchise name"),
                Column("City", "TEXT", "home city"),
                Column("Conference", "TEXT", "conference", value_examples=("EASTERN", "WESTERN")),
                Column("Founded", "DATE", "foundation date"),
            ),
        ),
        Table(
            name="Player",
            description="Players currently on a roster.",
            columns=(
                Column("PlayerID", "INTEGER", "player identifier", is_primary=True),
                Column("TeamID", "INTEGER", "current team"),
                Column("Name", "TEXT", "player name, stored upper-case"),
                Column("Position", "TEXT", "playing position",
                       value_examples=("CENTER", "GOALIE", "DEFENSEMAN", "LEFT WING", "RIGHT WING")),
                Column("BirthDate", "DATE", "date of birth"),
                Column("HeightCm", "INTEGER", "height in centimetres"),
            ),
        ),
        Table(
            name="SeasonStats",
            description="Per-player season statistics.",
            columns=(
                Column("StatID", "INTEGER", "stat row id", is_primary=True),
                Column("PlayerID", "INTEGER", "player"),
                Column("Season", "INTEGER", "season start year"),
                Column("Games", "INTEGER", "games played"),
                Column("Goals", "INTEGER", "goals scored"),
                Column("Assists", "INTEGER", "assists"),
                Column("PlusMinus", "INTEGER", "plus-minus (nullable for goalies)"),
            ),
        ),
    ),
    foreign_keys=(
        ForeignKey("Player", "TeamID", "Team", "TeamID"),
        ForeignKey("SeasonStats", "PlayerID", "Player", "PlayerID"),
    ),
)

_TEAM_WORDS = ("GLACIER KINGS", "STEEL WOLVES", "NORTH STARS", "HARBOR HAWKS",
               "IRON BEARS", "SUMMIT EAGLES", "RIVER OTTERS", "FROST GIANTS",
               "THUNDER ELKS", "COAL MINERS", "PINE RANGERS", "BAY RAIDERS")
_CITIES = ("DULUTH", "HALIFAX", "SPOKANE", "QUEBEC CITY", "MILWAUKEE",
           "PORTLAND", "HARTFORD", "SASKATOON")
_POSITIONS = ("CENTER", "GOALIE", "DEFENSEMAN", "LEFT WING", "RIGHT WING")


def populate(rng: np.random.Generator) -> dict[str, list[tuple]]:
    """Generate seeded synthetic rows for every table of this domain."""
    founded = common.random_dates(rng, 12, 1920, 1995)
    teams = [
        (tid, _TEAM_WORDS[tid - 1], common.pick(rng, _CITIES),
         "EASTERN" if tid % 2 else "WESTERN", founded[tid - 1])
        for tid in range(1, 13)
    ]
    names = common.person_names(rng, 260)
    births = common.random_dates(rng, 260, 1985, 2004)
    players = [
        (pid, int(rng.integers(1, 13)), names[pid - 1],
         common.pick(rng, _POSITIONS), births[pid - 1],
         int(rng.integers(168, 205)))
        for pid in range(1, 261)
    ]
    stats = []
    stat_id = 1
    for pid, _team, _name, position, _birth, _height in players:
        for season in (2020, 2021, 2022):
            if rng.random() < 0.2:
                continue
            goalie = position == "GOALIE"
            stats.append(
                (
                    stat_id,
                    pid,
                    season,
                    int(rng.integers(8, 83)),
                    0 if goalie else int(rng.integers(0, 52)),
                    int(rng.integers(0, 60)),
                    None if goalie else int(rng.integers(-35, 45)),
                )
            )
            stat_id += 1
    return {"Team": teams, "Player": players, "SeasonStats": stats}


TEMPLATES = (
    common.count_where_dirty(
        "count_position", "Player", "Position",
        "How many players play as a {value}?",
    ),
    common.list_where_dirty(
        "players_by_position", "Player", "Name", "Position",
        "List the names of all {value} players.",
    ),
    common.numeric_agg_where(
        "avg_height_position", "Player", "AVG", "HeightCm", "Position",
        "What is the average height in centimetres of {value} players?",
    ),
    common.count_join_distinct(
        "players_in_conference", "Player", "PlayerID", "Team", "Conference",
        "How many different players are on teams of the {value} conference?",
    ),
    common.date_year_count(
        "teams_founded", "Team", "Founded",
        "How many teams were founded in {year} or {direction}?",
        year_pool=(1925, 1932, 1939, 1946, 1953, 1960, 1967, 1974, 1981, 1988),
        comparator="<=",
    ),
    common.superlative_nullable(
        "best_plusminus", "SeasonStats", "PlayerID", "PlusMinus",
        "Which player recorded the best plus-minus of the {value} season?",
        filter_column="Season", clean=True,
    ),
    common.min_nullable(
        "worst_plusminus", "SeasonStats", "PlayerID", "PlusMinus",
        "Which player recorded the worst plus-minus of the {value} season?",
        filter_column="Season", clean=True,
    ),
    common.group_top(
        "position_most_players", "Player", "Position",
        "Which position has the {rank}most players?",
        ranks=(1, 2, 3, 4, 5),
    ),
    common.evidence_formula_count(
        "elite_scoring", "SeasonStats", "Goals", "an elite scoring season",
        30, 52,
        "How many player-seasons qualify as {term}?",
    ),
    common.multi_select_where(
        "name_and_height", "Player", ("Name", "HeightCm"), "Position",
        "Show the name and height of every {value}.",
    ),
    common.join_list_dirty(
        "team_names_by_position", "Team", "Name", "Player", "Position",
        "List the distinct team names that roster at least one {value}.",
    ),
    common.join_superlative_dirty(
        "tallest_by_conference", "Player", "Name", "Team", "Conference",
        "Player", "HeightCm",
        "Who is the tallest player on a team of the {value} conference?",
    ),
    common.group_having_count(
        "positions_many_players", "Player", "Position",
        "Which positions have at least {n} players?",
    ),
    common.date_between_count(
        "born_between", "Player", "BirthDate",
        "How many players were born between {lo} and {hi}?",
        year_pairs=((1986, 1994), (1990, 1998), (1994, 2002), (1988, 1996),
                    (1992, 2000), (1996, 2004), (1987, 1991), (1995, 1999),
                    (1989, 2001), (1991, 2003)),
    ),
    common.top_k_list(
        "top_plusminus", "SeasonStats", "PlayerID", "PlusMinus",
        "List the players behind the {k} best plus-minus seasons.",
    ),
    common.count_not_equal(
        "not_position", "Player", "Position",
        "How many players do not play as a {value}?",
    ),
    common.join_avg_dirty(
        "avg_goals_by_conference", "SeasonStats", "Goals", "Team", "Conference",
        "What is the average goals-per-season for players on {value} "
        "conference teams?",
    ),
    common.count_in_two(
        "count_two_positions", "Player", "Position",
        "How many players play as either a {value_a} or a {value_b}?",
    ),
)

DOMAIN = DomainSpec(
    name="hockey",
    schema=SCHEMA,
    populate=populate,
    templates=TEMPLATES,
    description=SCHEMA.description,
)
