"""Per-request tracing: one :class:`Trace` per request, nested
:class:`Span`\\ s per stage.

The span taxonomy mirrors the paper's agent decomposition (Table 6
attributes token cost per agent) plus the serving layers grown in PRs 1-3:

* ``request`` — the root; carries the question/database identity and the
  request totals (tokens, model seconds, wall seconds);
* ``preprocessing`` — amortized construction-time work, annotated with the
  shared preprocessing cost but charged zero per-request seconds;
* ``extraction`` / ``generation`` / ``refinement`` — the per-request
  stages, each attributed the **delta** of the request's
  :class:`~repro.core.cost.CostTracker` across its boundaries, so the
  per-span tokens and model seconds sum exactly to the request totals the
  serving stats already report (conservation by construction);
* ``alignment`` / ``execution`` — children of ``refinement``: the
  post-generation alignments and the SQL executions of the
  align-execute-correct loop;
* **events** — cache lookups, LLM retries, hedges and injected faults
  attach to whichever span was active when they happened (see
  :mod:`repro.observability.context`).

Wall-clock timings are recorded but excluded from :meth:`Span.structure`,
the deterministic projection the concurrency tests compare across reruns:
with the seeded simulator, two runs of the same request produce identical
structures regardless of thread scheduling.

Dependency-free (stdlib only): every other layer may import this module.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observability.context import use_span

__all__ = ["SpanEvent", "Span", "Trace", "STAGE_SPANS"]

#: the stage spans a complete request trace must contain (span taxonomy)
STAGE_SPANS = (
    "preprocessing",
    "extraction",
    "generation",
    "alignment",
    "refinement",
    "execution",
)


@dataclass(frozen=True)
class SpanEvent:
    """One point-in-time occurrence inside a span."""

    name: str
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return {"name": self.name, **self.attributes}


class Span:
    """One unit of attributed work inside a trace.

    Spans accumulate four cost axes:

    * ``wall_seconds`` — real elapsed time (non-deterministic);
    * ``model_seconds`` — simulated LLM decode seconds attributed to the
      span (virtual time, deterministic);
    * ``charged_seconds`` — non-LLM virtual seconds (SQL execution time,
      injected slow-query charges);
    * ``tokens`` — prompt + completion tokens attributed to the span.

    Thread-safe for event appends: a hedged execution may touch the same
    span from helper paths while the owning worker continues.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "children",
        "events",
        "attributes",
        "tokens",
        "model_seconds",
        "charged_seconds",
        "wall_seconds",
        "cache",
        "deadline_remaining_seconds",
        "status",
        "_trace",
        "_start",
        "_finished",
    )

    def __init__(self, name: str, trace: "Trace", parent: Optional["Span"] = None):
        self.name = name
        self._trace = trace
        self.span_id = trace._next_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.children: list[Span] = []
        self.events: list[SpanEvent] = []
        self.attributes: dict = {}
        self.tokens = 0
        self.model_seconds = 0.0
        self.charged_seconds = 0.0
        self.wall_seconds = 0.0
        #: "hit" / "miss" for spans answered through a cache tier
        self.cache: Optional[str] = None
        #: request budget left when the span finished (None without deadline)
        self.deadline_remaining_seconds: Optional[float] = None
        self.status = "ok"
        self._start = time.perf_counter()
        self._finished = False

    # ------------------------------------------------------------- building

    def child(self, name: str) -> "Span":
        """Open a child span (registered in creation order)."""
        span = Span(name, self._trace, parent=self)
        with self._trace._lock:
            self.children.append(span)
        return span

    def event(self, name: str, **attributes: Any) -> None:
        """Append one event (thread-safe)."""
        with self._trace._lock:
            self.events.append(SpanEvent(name=name, attributes=attributes))

    def set(self, key: str, value: Any) -> None:
        """Set one attribute on the span."""
        with self._trace._lock:
            self.attributes[key] = value

    def charge(self, seconds: float) -> None:
        """Attribute non-LLM virtual seconds (execution, slow queries)."""
        with self._trace._lock:
            self.charged_seconds += seconds

    def finish(self, deadline: Optional[Any] = None) -> "Span":
        """Stamp wall time (first call wins) and deadline remainder."""
        with self._trace._lock:
            if not self._finished:
                self.wall_seconds = time.perf_counter() - self._start
                self._finished = True
            if deadline is not None:
                self.deadline_remaining_seconds = deadline.remaining_seconds
        return self

    # -------------------------------------------------------------- reading

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant span named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready recursive view of the span."""
        payload = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "tokens": self.tokens,
            "model_seconds": round(self.model_seconds, 6),
            "charged_seconds": round(self.charged_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }
        if self.cache is not None:
            payload["cache"] = self.cache
        if self.deadline_remaining_seconds is not None:
            payload["deadline_remaining_seconds"] = round(
                self.deadline_remaining_seconds, 6
            )
        return payload

    def structure(self) -> tuple:
        """Deterministic projection: everything except wall-clock noise.

        Two runs of the same seeded request must produce equal structures
        — the property the concurrency tests assert across reruns.
        """
        return (
            self.name,
            self.status,
            self.cache,
            self.tokens,
            round(self.model_seconds, 6),
            tuple(event.name for event in self.events),
            tuple(child.structure() for child in self.children),
        )

    def format(self, indent: int = 0) -> str:
        """Human-readable subtree rendering."""
        pad = "  " * indent
        bits = [f"{pad}{self.name}"]
        if self.cache is not None:
            bits.append(f"[cache {self.cache}]")
        if self.status != "ok":
            bits.append(f"[{self.status}]")
        bits.append(f"tokens={self.tokens}")
        bits.append(f"model={self.model_seconds:.2f}s")
        if self.charged_seconds:
            bits.append(f"charged={self.charged_seconds:.2f}s")
        bits.append(f"wall={self.wall_seconds * 1000:.1f}ms")
        if self.deadline_remaining_seconds is not None:
            bits.append(f"deadline_left={self.deadline_remaining_seconds:.2f}s")
        lines = [" ".join(bits)]
        for event in self.events:
            detail = " ".join(f"{k}={v}" for k, v in event.attributes.items())
            lines.append(f"{pad}  · {event.name}" + (f" {detail}" if detail else ""))
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


def _cost_totals(cost: Any) -> tuple[int, float]:
    """(tokens, model_seconds) snapshot of a duck-typed CostTracker."""
    if cost is None:
        return 0, 0.0
    return int(cost.total_tokens), float(cost.total_model_seconds)


class Trace:
    """One request's complete span tree plus identity metadata."""

    def __init__(self, question_id: str = "", db_id: str = ""):
        self.question_id = question_id
        self.db_id = db_id
        self._lock = threading.RLock()
        self._id_counter = 0
        self.root = Span("request", self)
        if question_id:
            self.root.attributes["question_id"] = question_id
        if db_id:
            self.root.attributes["db_id"] = db_id

    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    # ------------------------------------------------------------- building

    @contextmanager
    def stage(
        self,
        name: str,
        cost: Any = None,
        deadline: Any = None,
        parent: Optional[Span] = None,
    ):
        """Open a stage span under ``parent`` (default: root), publish it as
        the ambient span, and attribute the cost delta across the block.

        The delta convention makes conservation structural: stages run
        sequentially on one request, so the sum of stage-span tokens and
        model seconds equals the request's CostTracker totals exactly.
        """
        span = (parent if parent is not None else self.root).child(name)
        tokens_before, seconds_before = _cost_totals(cost)
        try:
            with use_span(span):
                yield span
        finally:
            tokens_after, seconds_after = _cost_totals(cost)
            with self._lock:
                span.tokens += tokens_after - tokens_before
                span.model_seconds += seconds_after - seconds_before
            span.finish(deadline)

    def finish(self, cost: Any = None, deadline: Any = None) -> "Trace":
        """Close the root span, stamping the request totals."""
        tokens, seconds = _cost_totals(cost)
        with self._lock:
            self.root.tokens = tokens
            self.root.model_seconds = seconds
        self.root.finish(deadline)
        return self

    # -------------------------------------------------------------- reading

    def find(self, name: str) -> Optional[Span]:
        """The first span named ``name`` anywhere in the tree."""
        if self.root.name == name:
            return self.root
        return self.root.find(name)

    def spans(self) -> list[Span]:
        """Every span, depth-first from the root (creation order)."""
        return list(self.root.walk())

    def stage_costs(self) -> dict[str, dict]:
        """Tokens + virtual seconds per direct stage span (Table-6 view).

        ``charged_seconds`` aggregates the stage's whole subtree (e.g.
        refinement includes its alignment/execution children); tokens and
        model seconds are stage-level deltas, so they need no aggregation.
        """
        return {
            child.name: {
                "tokens": child.tokens,
                "model_seconds": round(child.model_seconds, 6),
                "charged_seconds": round(
                    sum(span.charged_seconds for span in child.walk()), 6
                ),
            }
            for child in self.root.children
        }

    def structure(self) -> tuple:
        """Deterministic projection of the whole tree (see Span.structure)."""
        return self.root.structure()

    def to_dict(self) -> dict:
        """JSON-ready view of the trace."""
        return {
            "question_id": self.question_id,
            "db_id": self.db_id,
            "spans": self.root.to_dict(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        """Human-readable span tree."""
        header = f"trace {self.question_id or '<anonymous>'}"
        if self.db_id:
            header += f" (db={self.db_id})"
        return header + "\n" + self.root.format()
