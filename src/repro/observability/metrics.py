"""Unified metrics registry: counters, gauges, histograms, collectors.

Before this module every subsystem kept a free-floating stats object
(``ServingStats``, ``ReliabilityStats``, ``HedgeStats``, ``CacheStats``,
``HealthMonitor``) with its own ``to_dict``/``summary`` shape and no
common export.  The registry gives them one spine:

* **instruments** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  created through the registry, optionally labelled
  (``counter.labels(status="ok").inc()``), all guarded by one lock;
* **collectors** — existing stats objects register a zero-argument
  callable returning their summary dict; :meth:`MetricsRegistry.snapshot`
  pulls and flattens them, so legacy stats surface in the unified export
  without rewriting their accounting;
* **export** — :meth:`snapshot` (deterministically ordered nested dict),
  :meth:`to_json` / :meth:`to_jsonl` (one sample per line) and
  :meth:`render` (human-readable), consumed by ``python -m repro metrics``.

Naming scheme: ``repro_<subsystem>_<measure>[_total|_seconds]``, labels
for bounded cardinality dimensions only (status, tier, stage).  Snapshot
order is sorted by metric name then label items, so two snapshots of the
same state serialize identically — the property the CI gate and the
determinism tests rely on.

Dependency-free (stdlib only): any layer may import this module.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "flatten"]

#: virtual-seconds buckets covering cache hits (~0) to deadline blowouts
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


def _label_key(labelnames: tuple, labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Instrument:
    """Shared machinery: name, help text, label handling, one lock."""

    kind = "instrument"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        lock: Optional[threading.RLock] = None,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock if lock is not None else threading.RLock()
        self._series: dict[tuple, Any] = {}

    def labels(self, **labels: Any) -> "_Series":
        """The series for one label combination (created on first use)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._new_series()
            return series

    def _default_series(self) -> "_Series":
        if self.labelnames:
            raise ValueError(
                f"{self.name} declares labels {self.labelnames}; use .labels()"
            )
        return self.labels()

    def _new_series(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def samples(self) -> list[tuple[tuple, Any]]:
        """(label values, value) pairs in deterministic (sorted) order."""
        with self._lock:
            return sorted(
                (key, series.value()) for key, series in self._series.items()
            )


class _CounterSeries:
    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Instrument):
    """Monotonically increasing count (requests, hits, faults)."""

    kind = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series."""
        self._default_series().inc(amount)

    def value(self) -> float:
        """Current value of the unlabelled series."""
        return self._default_series().value()


class _GaugeSeries:
    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """Point-in-time value (queue depth, breaker state, hit rate)."""

    kind = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries(self._lock)

    def set(self, value: float) -> None:
        """Set the unlabelled series."""
        self._default_series().set(value)

    def value(self) -> float:
        """Current value of the unlabelled series."""
        return self._default_series().value()


class _HistogramSeries:
    def __init__(self, lock: threading.RLock, buckets: tuple[float, ...]):
        self._lock = lock
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def value(self) -> dict:
        with self._lock:
            cumulative, running = {}, 0
            for bound, count in zip(self._buckets, self._counts):
                running += count
                cumulative[str(bound)] = running
            cumulative["+Inf"] = running + self._counts[-1]
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "buckets": cumulative,
            }

    def restore(self, payload: dict) -> None:
        """Load state from a :meth:`value` dict (snapshot round-trip)."""
        cumulative = payload.get("buckets", {})
        with self._lock:
            running = 0
            for index, bound in enumerate(self._buckets):
                total = int(cumulative.get(str(bound), running))
                self._counts[index] = total - running
                running = total
            self._counts[-1] = int(cumulative.get("+Inf", running)) - running
            self._count = int(payload.get("count", 0))
            self._sum = float(payload.get("sum", 0.0))


class Histogram(_Instrument):
    """Distribution with cumulative buckets (service seconds, tokens)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        lock: Optional[threading.RLock] = None,
    ):
        super().__init__(name, help, labelnames, lock=lock)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the unlabelled series."""
        self._default_series().observe(value)


def flatten(payload: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten a nested stats dict into dotted scalar samples.

    Lists are skipped (unbounded cardinality); scalars (numbers, bools,
    strings) are kept so states like ``breaker_state: closed`` survive.
    Keys come out sorted, keeping the export deterministic.
    """
    flat: dict[str, Any] = {}
    if isinstance(payload, dict):
        for key in sorted(payload, key=str):
            dotted = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(payload[key], dotted))
    elif isinstance(payload, (int, float, bool, str)) or payload is None:
        flat[prefix] = payload
    return flat


class MetricsRegistry:
    """The process-wide (or per-engine) home for every metric."""

    def __init__(self):
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}

    # --------------------------------------------------------- registration

    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument):
                    raise ValueError(
                        f"metric {instrument.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._instruments[instrument.name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        """Get-or-create a counter (idempotent per name)."""
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        """Get-or-create a gauge."""
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get-or-create a histogram."""
        return self._register(Histogram(name, help, labelnames, buckets))

    def register_collector(self, name: str, collect: Callable[[], dict]) -> None:
        """Register a stats object's summary callable under ``name``.

        ``collect`` is pulled (and flattened) on every :meth:`snapshot`, so
        the existing free-floating stats objects surface in the unified
        export without changing how they accumulate.
        """
        with self._lock:
            self._collectors[name] = collect

    # ------------------------------------------------------------ round-trip

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        The inverse of :meth:`snapshot` for JSON-serialized state: the
        shard coordinator ships worker snapshots across process
        boundaries as plain JSON and rehydrates them here.  Instruments
        come back live (counters at their counts, histograms with their
        bucket fill); collectors come back as static samplers returning
        the flattened capture — ``from_snapshot(s).snapshot() == s``
        because flattening a flat dict is the identity.

        Label strings must not contain ``,`` or ``=`` in their *values*
        (the registry's bounded-cardinality naming scheme never does).
        """
        registry = cls()
        for name, payload in snapshot.get("metrics", {}).items():
            kind = payload.get("type")
            samples = payload.get("samples", {})
            labelnames: tuple = ()
            for label in samples:
                if label != "_":
                    labelnames = tuple(
                        part.split("=", 1)[0] for part in label.split(",")
                    )
                    break
            # Instruments with no samples yet must still come back
            # registered (they snapshot as empty either way).
            if kind == "counter":
                registry.counter(name, labelnames=labelnames)
            elif kind == "gauge":
                registry.gauge(name, labelnames=labelnames)
            elif kind == "histogram" and not samples:
                registry.histogram(name, labelnames=labelnames)
            for label, value in samples.items():
                labels = (
                    {}
                    if label == "_"
                    else dict(part.split("=", 1) for part in label.split(","))
                )
                if kind == "counter":
                    registry.counter(name, labelnames=labelnames).labels(
                        **labels
                    ).inc(value)
                elif kind == "gauge":
                    registry.gauge(name, labelnames=labelnames).labels(
                        **labels
                    ).set(value)
                elif kind == "histogram":
                    bounds = [
                        float(bound)
                        for bound in value.get("buckets", {})
                        if bound != "+Inf"
                    ]
                    instrument = registry.histogram(
                        name,
                        labelnames=labelnames,
                        buckets=bounds or DEFAULT_BUCKETS,
                    )
                    instrument.labels(**labels).restore(value)
        for name, flat in snapshot.get("collected", {}).items():
            registry.register_collector(name, lambda flat=flat: flat)
        return registry

    # --------------------------------------------------------------- export

    def snapshot(self) -> dict:
        """Deterministically ordered view of every metric and collector."""
        with self._lock:
            instruments = sorted(self._instruments.items())
            collectors = sorted(self._collectors.items())
        metrics: dict[str, dict] = {}
        for name, instrument in instruments:
            samples = {}
            for key, value in instrument.samples():
                label = ",".join(
                    f"{n}={v}" for n, v in zip(instrument.labelnames, key)
                )
                samples[label or "_"] = value
            metrics[name] = {"type": instrument.kind, "samples": samples}
        collected: dict[str, dict] = {}
        for name, collect in collectors:
            collected[name] = flatten(collect())
        return {"metrics": metrics, "collected": collected}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as one JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_jsonl(self) -> str:
        """One JSON object per sample (stream-friendly export)."""
        snapshot = self.snapshot()
        lines = []
        for name, payload in snapshot["metrics"].items():
            for label, value in payload["samples"].items():
                sample = {
                    "metric": name,
                    "type": payload["type"],
                    "labels": None if label == "_" else label,
                    "value": value,
                }
                lines.append(json.dumps(sample, sort_keys=True))
        for source, flat in snapshot["collected"].items():
            for key, value in flat.items():
                sample = {
                    "metric": f"{source}.{key}",
                    "type": "collected",
                    "labels": None,
                    "value": value,
                }
                lines.append(json.dumps(sample, sort_keys=True))
        return "\n".join(lines)

    def render(self) -> str:
        """Human-readable multi-line dump (``repro metrics`` default)."""
        snapshot = self.snapshot()
        lines = []
        for name, payload in snapshot["metrics"].items():
            for label, value in payload["samples"].items():
                where = f"{name}{{{label}}}" if label != "_" else name
                if isinstance(value, dict):  # histogram
                    lines.append(f"{where} count={value['count']} sum={value['sum']}")
                else:
                    lines.append(f"{where} {value}")
        for source, flat in snapshot["collected"].items():
            for key, value in flat.items():
                lines.append(f"{source}.{key} {value}")
        return "\n".join(lines)
