"""Observability: per-request tracing, unified metrics, cost attribution.

The observability spine the serving, reliability and evaluation layers
plug into:

* :class:`Trace` / :class:`Span` — one span tree per request, propagated
  explicitly through ``ServingEngine`` → ``OpenSearchSQL.answer`` → the
  stage agents → ``SQLExecutor.execute``; cache lookups, retries, hedges
  and injected faults attach as events via the ambient span published in
  :mod:`repro.observability.context`;
* :class:`MetricsRegistry` — counters/gauges/histograms plus collectors
  that pull the existing stats objects into one deterministic export;
* ``python -m repro trace`` / ``python -m repro metrics`` — the CLI
  surface over both.

This package is stdlib-only and sits below every other repro layer, so
core, execution, reliability, caching and serving can all import it
without cycles.
"""

from repro.observability.context import add_event, current_span, use_span
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten,
)
from repro.observability.trace import STAGE_SPANS, Span, SpanEvent, Trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAGE_SPANS",
    "Span",
    "SpanEvent",
    "Trace",
    "add_event",
    "current_span",
    "flatten",
    "use_span",
]
