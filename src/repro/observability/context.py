"""Ambient span propagation for cross-cutting instrumentation.

The tracing spine is **explicit**: a :class:`~repro.observability.trace.
Trace` is created per request by the serving engine (or an evaluation
runner) and threaded through ``OpenSearchSQL.answer`` into the stage
agents and ``SQLExecutor.execute``.  But several layers cut *across* that
spine — the resilient LLM transport retries a call it does not know
belongs to the extraction stage, the fault injectors fire inside whatever
stage happened to call them, the cache tiers sit between stages — and
threading a span through every one of those signatures would couple the
reliability and caching layers to observability.

Instead, the spine *publishes* the active span here (a ``contextvars``
slot, so concurrent serving workers never see each other's spans), and
cross-cutting layers call :func:`add_event` to attach what happened to
whichever span is current.  With no active span every call is a cheap
no-op, so un-traced runs pay nothing.

This module is dependency-free (stdlib only) by design: reliability,
execution, caching and serving all import it without cycles.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Any, Optional

__all__ = ["current_span", "use_span", "add_event"]

_CURRENT_SPAN: contextvars.ContextVar[Optional[Any]] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def current_span() -> Optional[Any]:
    """The span the running thread is currently inside, or ``None``."""
    return _CURRENT_SPAN.get()


@contextmanager
def use_span(span: Optional[Any]):
    """Make ``span`` the ambient span for the duration of the block.

    ``None`` is allowed and clears the slot, so callers can write one code
    path for traced and un-traced runs.
    """
    token = _CURRENT_SPAN.set(span)
    try:
        yield span
    finally:
        _CURRENT_SPAN.reset(token)


def add_event(name: str, **attributes: Any) -> bool:
    """Attach an event to the ambient span; returns False when none is set.

    ``attributes`` must be JSON-serializable scalars (the span tree is
    exported as JSON).  Callers needing virtual-time accounting should use
    the span object directly via :func:`current_span`.
    """
    span = _CURRENT_SPAN.get()
    if span is None:
        return False
    span.event(name, **attributes)
    return True
