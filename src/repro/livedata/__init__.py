"""Live-mutation robustness: epoch-versioned catalogs, background
reindexing, stale-serve detection and the drift-chaos certifier.

Submodules are imported lazily (PEP 562): :mod:`repro.livedata.errors`
is imported by the serving engine and the journal, which this package's
heavier submodules import in turn — eager re-exports here would close
that cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "LiveDataError": "repro.livedata.errors",
    "StaleCatalogError": "repro.livedata.errors",
    "CrossEpochReplayError": "repro.livedata.errors",
    "EpochRegistry": "repro.livedata.epoch",
    "MutationEvent": "repro.livedata.mutations",
    "MutationDriver": "repro.livedata.mutations",
    "MUTATION_KINDS": "repro.livedata.mutations",
    "ReindexCheckpoint": "repro.livedata.reindex",
    "ReindexWorker": "repro.livedata.reindex",
    "ReindexReport": "repro.livedata.reindex",
    "DoubleReindexError": "repro.livedata.reindex",
    "DriftFuzzConfig": "repro.livedata.driftfuzz",
    "DriftFuzzResult": "repro.livedata.driftfuzz",
    "run_drift_fuzz": "repro.livedata.driftfuzz",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
