"""Drift-chaos certifier: mutations at every request boundary.

The storage layer has :mod:`repro.storage.crashfuzz` (power cuts at
every append boundary); this is its live-data sibling.  One campaign
certifies the three invariants the live-mutation world promises:

1. **Zero stale serves.**  A routed serving run is interleaved with
   seeded :class:`~repro.livedata.mutations.MutationDriver` mutations at
   request boundaries; after each mutation the engine's caches are
   invalidated and the :class:`~repro.livedata.reindex.ReindexWorker`
   brings the artifacts up to the new epoch.  The engine's
   ``stale_served`` counter — a completed answer whose catalog moved
   under it undetected — must end the campaign at exactly zero, and
   every answer is recorded with the ``schema_epoch`` it derived from.
2. **Zero double-reindexes.**  The reindex checkpoint must carry exactly
   one ``done`` record per ``(db_id, epoch)``.
3. **Byte-identical kill/resume.**  One more mutation is applied and
   reindexed through a recording opener (logging the checkpoint's byte
   length after every append); then simulated SIGKILLs are enumerated —
   a *clean* cut after each append, and a *torn* cut mid-way through
   the next line — and a fresh worker resumes each truncated
   checkpoint.  Every resume must leave the file byte-identical to the
   uninterrupted reference (and a cut at the very end must produce the
   typed :class:`~repro.livedata.reindex.DoubleReindexError`, not a
   second pass).

Everything — workload, mutation schedule, embeddings, cut points — is
seeded, so two runs of the same config produce byte-identical outcome
documents; ``bench_drift`` diffs exactly that.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.livedata.epoch import EpochRegistry
from repro.livedata.mutations import MutationDriver
from repro.livedata.reindex import DoubleReindexError, ReindexWorker

__all__ = ["DriftFuzzConfig", "DriftOutcome", "DriftFuzzResult", "run_drift_fuzz"]


@dataclass
class DriftFuzzConfig:
    """Knobs of one drift campaign (all deterministic by ``seed``)."""

    requests: int = 10
    distinct: int = 5
    seed: int = 0
    candidates: int = 3
    routing: bool = True
    benchmark: str = "cluster-smoke"
    #: apply one mutation after every N served requests
    mutate_every: int = 1
    #: bound the kill/resume cut enumeration to the first N boundaries
    #: (None = every checkpoint append boundary)
    limit: Optional[int] = None
    #: include torn (mid-line) cut variants
    torn: bool = True


@dataclass
class DriftOutcome:
    """One kill/resume cut point's verdict."""

    cut: str  # "clean-004" | "torn-004"
    kind: str  # "clean" | "torn"
    outcome: str  # "identical" | "already-done" | "diverged" | "traceback"
    detail: str = ""
    ok: bool = False

    def to_dict(self) -> dict:
        return {
            "cut": self.cut,
            "kind": self.kind,
            "outcome": self.outcome,
            "detail": self.detail,
            "ok": self.ok,
        }


@dataclass
class DriftFuzzResult:
    """Campaign verdict: serve-phase counters plus per-cut outcomes."""

    requests: list = field(default_factory=list)  # per-request dicts
    mutations: list = field(default_factory=list)  # MutationEvent dicts
    reindexes: list = field(default_factory=list)  # ReindexReport dicts
    livedata: dict = field(default_factory=dict)  # engine stale counters
    epoch_stamps: dict = field(default_factory=dict)  # journal stamps / db
    duplicate_done: int = 0
    catchup_seconds: float = 0.0
    outcomes: list = field(default_factory=list)  # DriftOutcome
    cut_points: int = 0
    checkpoint_crc: int = 0

    @property
    def stale_serves(self) -> int:
        return int(self.livedata.get("stale_served", 0))

    @property
    def ok(self) -> bool:
        return (
            self.stale_serves == 0
            and self.duplicate_done == 0
            and bool(self.outcomes)
            and all(o.ok for o in self.outcomes)
        )

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
        return {
            "requests": len(self.requests),
            "mutations": len(self.mutations),
            "reindexes": len(self.reindexes),
            "stale_serves": self.stale_serves,
            "stale_detected": int(self.livedata.get("stale_detected", 0)),
            "double_reindexes": self.duplicate_done,
            "catchup_seconds": round(self.catchup_seconds, 6),
            "cuts": len(self.outcomes),
            "append_boundaries": self.cut_points,
            "outcomes": dict(sorted(counts.items())),
            "ok": self.ok,
        }

    def to_dict(self) -> dict:
        """The full, deterministic outcome document (two runs diff empty)."""
        return {
            "summary": self.summary(),
            "requests": list(self.requests),
            "mutations": list(self.mutations),
            "reindexes": list(self.reindexes),
            "livedata": dict(self.livedata),
            "epoch_stamps": dict(sorted(self.epoch_stamps.items())),
            "checkpoint_crc": self.checkpoint_crc,
            "cuts": [outcome.to_dict() for outcome in self.outcomes],
        }

    def format(self) -> str:
        s = self.summary()
        mix = ", ".join(f"{k}={v}" for k, v in s["outcomes"].items())
        verdict = "CERTIFIED" if self.ok else "FAILED"
        return (
            f"drift-fuzz: {s['requests']} requests / {s['mutations']} "
            f"mutations / {s['reindexes']} reindexes — "
            f"stale_serves={s['stale_serves']} "
            f"double_reindexes={s['double_reindexes']} — "
            f"{s['cuts']} kill cuts over {s['append_boundaries']} append "
            f"boundaries ({mix}) — {verdict}"
        )


class _RecordingOpener:
    """Append-mode opener logging each write's byte length per file."""

    def __init__(self):
        #: (size_after_append, nbytes) in append order for the one path
        self.log: list[tuple[int, int]] = []
        self._size = 0

    def __call__(self, path, mode: str):
        outer = self

        class _File:
            def __init__(self):
                self._handle = open(path, mode, encoding="utf-8")

            def write(self, data: str) -> int:
                written = self._handle.write(data)
                outer._size += len(data.encode("utf-8"))
                outer.log.append((outer._size, len(data.encode("utf-8"))))
                return written

            def flush(self):
                self._handle.flush()

            def fileno(self):
                return self._handle.fileno()

            def close(self):
                self._handle.close()

        return _File()


def _build(config: DriftFuzzConfig):
    """(workload, pipeline, benchmark) for the campaign."""
    from repro.serving.cluster.config import ClusterConfig, build_worker_pipeline
    from repro.serving.workload import zipf_workload

    routing_config: dict = {}
    if config.routing:
        from repro.routing import RoutingConfig

        routing_config = RoutingConfig().to_dict()
    cluster = ClusterConfig(
        shards=1,
        benchmark=config.benchmark,
        candidates=config.candidates,
        seed=config.seed,
        journal_dir="unused",
        routing=config.routing,
        routing_config=routing_config,
    )
    benchmark, pipeline = build_worker_pipeline(cluster)
    by_db: dict = {}
    for example in benchmark.dev:
        by_db.setdefault(example.db_id, []).append(example)
    queues = list(by_db.values())
    pool, index = [], 0
    while len(pool) < config.distinct and any(queues):
        queue = queues[index % len(queues)]
        if queue:
            pool.append(queue.pop(0))
        index += 1
    workload = zipf_workload(pool, requests=config.requests, seed=config.seed)
    return workload, pipeline, benchmark


def run_drift_fuzz(
    config: DriftFuzzConfig, workdir: Union[str, Path]
) -> DriftFuzzResult:
    """Run one full campaign under ``workdir`` (left on disk for triage)."""
    from repro.serving.engine import ServingEngine
    from repro.serving.journal import ServingJournal, epoch_stamps

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    workload, pipeline, benchmark = _build(config)
    registry = EpochRegistry()
    driver = MutationDriver(benchmark, registry, seed=config.seed)
    result = DriftFuzzResult()

    # ------------------------------------------------ phase 1: serve+drift
    journal = ServingJournal(workdir / "journal.jsonl")
    journal.write_header({"kind": "drift-fuzz", "seed": config.seed})
    engine = ServingEngine(
        pipeline,
        workers=1,
        queue_capacity=max(4, config.requests),
        journal=journal,
    )
    engine.attach_livedata(registry)
    worker = ReindexWorker(
        pipeline,
        workdir / "reindex.jsonl",
        registry=registry,
        health=engine.health,
    )
    served = 0
    for example in workload:
        answer = engine.answer(example)
        served += 1
        result.requests.append(
            {
                "question_id": example.question_id,
                "db_id": example.db_id,
                "epoch": registry.epoch(example.db_id),
                "sql_crc": zlib.crc32(answer.final_sql.encode()) & 0xFFFFFFFF,
                "degradations": sorted(answer.degradations),
            }
        )
        if served % config.mutate_every == 0 and served < len(workload):
            event = driver.mutate()
            engine.invalidate_db(event.db_id)
            worker.reindex(event.db_id, epoch=event.epoch)
    result.epoch_stamps = epoch_stamps(journal, workload)
    engine.shutdown()
    result.reindexes = [report.to_dict() for report in worker.reports]
    result.livedata = dict(engine.livedata_stats)
    result.duplicate_done = len(worker.checkpoint.duplicate_done)
    result.catchup_seconds = worker.total_catchup_seconds

    # --------------------------------------- phase 2: kill/resume the worker
    # One more mutation, reindexed through a recording opener so every
    # checkpoint append boundary becomes a simulated SIGKILL point.
    event = driver.mutate()
    engine.invalidate_db(event.db_id)
    result.mutations = driver.log_dict()
    recording = _RecordingOpener()
    ref_path = workdir / "reindex-ref.jsonl"
    ref_worker = ReindexWorker(
        pipeline, ref_path, opener=recording, registry=registry
    )
    ref_report = ref_worker.reindex(event.db_id, epoch=event.epoch)
    ref_worker.close()
    result.reindexes.append(ref_report.to_dict())
    result.catchup_seconds += ref_report.catchup_seconds
    ref_bytes = ref_path.read_bytes()
    result.cut_points = len(recording.log)
    result.checkpoint_crc = zlib.crc32(ref_bytes) & 0xFFFFFFFF

    def run_cut(cut_id: str, kind: str, length: int) -> None:
        cut_path = workdir / f"cut-{cut_id}.jsonl"
        cut_path.write_bytes(ref_bytes[:length])
        entry = DriftOutcome(cut=cut_id, kind=kind, outcome="traceback")
        try:
            cut_worker = ReindexWorker(
                pipeline, cut_path, registry=registry
            )
            try:
                cut_worker.reindex(event.db_id, epoch=event.epoch)
                entry.outcome = (
                    "identical"
                    if cut_path.read_bytes() == ref_bytes
                    else "diverged"
                )
            except DoubleReindexError:
                entry.outcome = (
                    "already-done"
                    if cut_path.read_bytes() == ref_bytes
                    else "diverged"
                )
            finally:
                cut_worker.close()
        except Exception as exc:  # noqa: BLE001 — the cert counts tracebacks
            entry.detail = f"{type(exc).__name__}: {exc}"
        entry.ok = entry.outcome in ("identical", "already-done")
        result.outcomes.append(entry)
        cut_path.unlink(missing_ok=True)

    clean_ks = list(range(len(recording.log) + 1))
    torn_ks = [k for k, (_size, nbytes) in enumerate(recording.log) if nbytes >= 2]
    if config.limit is not None:
        clean_ks = clean_ks[: config.limit] + clean_ks[-1:]
        torn_ks = torn_ks[: config.limit]
    for k in clean_ks:
        length = recording.log[k - 1][0] if k > 0 else 0
        run_cut(f"clean-{k:03d}", "clean", length)
    if config.torn:
        for k in torn_ks:
            size_after, nbytes = recording.log[k]
            run_cut(f"torn-{k:03d}", "torn", size_after - nbytes + nbytes // 2)
    return result
