"""Typed errors of the live-mutation layer.

Kept dependency-free (stdlib only) so the serving engine, the journal
and the CLI can all import them without touching the rest of
:mod:`repro.livedata` (which imports serving pieces in turn).
"""

from __future__ import annotations

__all__ = ["LiveDataError", "StaleCatalogError", "CrossEpochReplayError"]


class LiveDataError(RuntimeError):
    """Base class for live-mutation failures."""


class StaleCatalogError(LiveDataError):
    """A request is about to execute SQL derived from an outdated catalog.

    Raised by the pre-execute epoch check when the database's
    ``schema_epoch`` moved past the epoch the request's extraction and
    prompts were built against.  The serving engine absorbs exactly one
    occurrence per request with a re-extract-and-retry at the new epoch;
    a second occurrence (the catalog moved again mid-retry) escapes as a
    typed request failure.
    """

    def __init__(self, db_id: str, pinned_epoch: int, current_epoch: int):
        super().__init__(
            f"catalog for {db_id!r} moved from schema_epoch "
            f"{pinned_epoch} to {current_epoch} mid-request"
        )
        self.db_id = db_id
        self.pinned_epoch = pinned_epoch
        self.current_epoch = current_epoch


class CrossEpochReplayError(LiveDataError):
    """A journal's committed records span a different catalog epoch than
    the databases the replay would run against.

    Replaying a record that was served at ``schema_epoch`` N against a
    database now at epoch M would silently re-serve answers derived from
    a catalog that no longer exists — ``recover`` refuses instead, the
    same way it refuses a skill-profile or tier-mix mismatch.
    """

    def __init__(self, db_id: str, recorded_epochs: tuple[int, ...], current_epoch: int):
        recorded = ", ".join(str(e) for e in recorded_epochs)
        super().__init__(
            f"journal records for {db_id!r} were committed at "
            f"schema_epoch {{{recorded}}} but the replay catalog is at "
            f"epoch {current_epoch}"
        )
        self.db_id = db_id
        self.recorded_epochs = tuple(recorded_epochs)
        self.current_epoch = current_epoch
