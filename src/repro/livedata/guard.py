"""The pre-execute epoch check.

:class:`EpochGuardExecutor` composes onto the pipeline's per-database
executor chain (the same ``executor_wrapper`` seam hedging uses).  The
serving engine pins the catalog epoch a request started from in a
per-thread slot just before running the pipeline; every SQL execution
then compares the pin against the registry's *current* epoch and raises
a typed :class:`~repro.livedata.errors.StaleCatalogError` when the
catalog moved mid-request — before the stale SQL touches the database.

Threads without a pin (scoring, recovery, hedge helpers) execute
unchecked: the guard protects the serving hot path, not offline reads.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.livedata.epoch import EpochRegistry
from repro.livedata.errors import StaleCatalogError

__all__ = ["EpochPins", "EpochGuardExecutor"]


class EpochPins(threading.local):
    """Per-thread ``{db_id: pinned_epoch}`` slot (None = unchecked)."""

    def __init__(self):
        self.epochs: Optional[dict[str, int]] = None

    def pin(self, db_id: str, epoch: int) -> None:
        self.epochs = {db_id: epoch}

    def clear(self) -> None:
        self.epochs = None


class EpochGuardExecutor:
    """Executor wrapper enforcing the pre-execute epoch check."""

    def __init__(self, inner, db_id: str, registry: EpochRegistry, pins: EpochPins):
        self.inner = inner
        self.db_id = db_id
        self.registry = registry
        self._pins = pins

    def _check(self) -> None:
        pinned = self._pins.epochs
        if pinned is None:
            return
        epoch = pinned.get(self.db_id)
        if epoch is None:
            return
        current = self.registry.epoch(self.db_id)
        if current != epoch:
            raise StaleCatalogError(self.db_id, epoch, current)

    def execute(self, sql, *args, **kwargs):
        self._check()
        return self.inner.execute(sql, *args, **kwargs)

    def execute_or_raise(self, sql, *args, **kwargs):
        self._check()
        return self.inner.execute_or_raise(sql, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self.inner, name)
