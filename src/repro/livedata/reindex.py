"""Crash-safe background reindexing for mutated databases.

When a :class:`~repro.livedata.mutations.MutationDriver` moves a
database to a new ``schema_epoch``, the serving pipeline's preprocessing
artifacts — the value/column vector indexes, the schema prompt, the
few-shot library's embeddings — describe a world that no longer exists.
:class:`ReindexWorker` re-derives them, one mutated database at a time,
with the durability discipline of the serving journal:

* **Checkpointed progress.**  Every completed unit of work (the schema/
  column pass, each table's value pass, the few-shot re-embed) appends a
  CRC-framed v2 record (:func:`repro.storage.format.encode_record`) to a
  checkpoint file opened through the same ``opener`` seam the journal
  uses — so the storage chaos layer (:class:`~repro.storage.faults.
  FaultyStorage`) can torture the write path, and every record is
  fsynced before the worker moves on.
* **Resumable after SIGKILL.**  On restart the worker scans the
  checkpoint (torn tails truncated, interior damage refused), recomputes
  every unit *in memory* — the process that died took its indexes with
  it — but appends records only for units the crash lost.  Because unit
  order and content are deterministic, the resumed checkpoint file is
  byte-identical to one written by an uninterrupted reindex, and a
  recorded-vs-recomputed digest mismatch is a typed failure rather than
  silent drift.
* **Zero double-reindexes.**  A ``done`` record is unique per
  ``(db_id, epoch)``; asking for an epoch that already completed raises
  :class:`DoubleReindexError` instead of burning a second pass.
* **Degraded, not dead.**  In background mode the worker consumes epoch
  bumps from a queue; a reindex failure is recorded against the
  ``reindex`` :class:`~repro.serving.health.HealthMonitor` component and
  surfaced through the ``reindexer`` probe (queue depth, liveness, last
  error) so a coordinator sees a wedged reindexer as a degraded worker,
  never a dead one.

Catch-up time is **virtual**: ``vectors re-embedded × seconds_per_
vector``, mirroring the repo's virtual-clock convention so the
``reindex_catchup_seconds`` gate metric is bit-reproducible.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.livedata.errors import LiveDataError
from repro.storage.format import (
    JournalCorruptionError,
    encode_record,
    scan_file,
)
from repro.storage.faults import stable_hash

__all__ = [
    "DoubleReindexError",
    "ReindexCheckpoint",
    "ReindexReport",
    "ReindexWorker",
]

#: virtual re-embedding cost per vector (seconds); deterministic by fiat
SECONDS_PER_VECTOR = 0.0005


class DoubleReindexError(LiveDataError):
    """A ``(db_id, epoch)`` pair that already completed was re-requested."""

    def __init__(self, db_id: str, epoch: int):
        super().__init__(
            f"reindex of {db_id!r} at schema_epoch {epoch} already completed; "
            "a second pass would double-bill the catch-up work"
        )
        self.db_id = db_id
        self.epoch = epoch


def _digest(parts: list[str]) -> str:
    """Stable short digest of a unit's re-embedded keys."""
    return format(stable_hash("reindex-digest", *sorted(parts)) & 0xFFFFFFFF, "08x")


class ReindexCheckpoint:
    """The v2-framed JSONL checkpoint behind one worker.

    Record grammar (every line CRC-framed with a monotone ``rec``)::

        {"type": "header", "version": 2, "config": {"kind": "reindex"}}
        {"type": "start", "db_id": D, "epoch": E, "units": [...]}
        {"type": "unit",  "db_id": D, "epoch": E, "unit": U,
         "vectors": N, "digest": H}
        {"type": "done",  "db_id": D, "epoch": E, "vectors": N,
         "catchup_seconds": S}

    ``load`` classifies damage with the journal's scanner: a torn tail
    (the one shape SIGKILL-mid-append produces) is truncated away so the
    next append lands on a clean line boundary; interior damage raises
    :class:`~repro.storage.format.JournalCorruptionError`.
    """

    def __init__(self, path: Union[str, Path], opener: Callable = open):
        self.path = Path(path)
        self._opener = opener
        self._handle = None
        self._rec = 0
        #: (db_id, epoch) pairs with a start record
        self.started: set[tuple[str, int]] = set()
        #: (db_id, epoch, unit) triples with a unit record
        self.units: dict[tuple[str, int, str], dict] = {}
        #: (db_id, epoch) pairs with a done record
        self.done: set[tuple[str, int]] = set()
        #: done records seen more than once (must stay empty)
        self.duplicate_done: list[tuple[str, int]] = []
        self.load()

    def load(self) -> None:
        """(Re)build the in-memory view from the file on disk."""
        self.started.clear()
        self.units.clear()
        self.done.clear()
        self.duplicate_done.clear()
        if not self.path.exists():
            self._rec = 0
            return
        scan = scan_file(self.path)
        if scan.interior_issues:
            raise JournalCorruptionError(self.path, scan)
        if scan.issues:
            # torn tail: drop the half-written line so the resumed
            # append stream stays byte-identical to an unbroken one
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.good_bytes)
        self._rec = scan.next_rec
        for record in scan.parsed:
            kind = record.get("type")
            if kind == "start":
                self.started.add((record["db_id"], record["epoch"]))
            elif kind == "unit":
                key = (record["db_id"], record["epoch"], record["unit"])
                self.units[key] = record
            elif kind == "done":
                pair = (record["db_id"], record["epoch"])
                if pair in self.done:
                    self.duplicate_done.append(pair)
                self.done.add(pair)

    def append(self, record: dict) -> None:
        """Frame, append and fsync one record."""
        if self._handle is None:
            self._handle = self._opener(self.path, "a")
        line = encode_record(record, self._rec)
        self._handle.write(line + "\n")
        self._rec += 1
        sync = getattr(self._handle, "sync", None)
        if sync is not None:
            sync()
        else:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class ReindexReport:
    """One completed (or resumed) reindex of a database at an epoch."""

    db_id: str
    epoch: int
    units: list[str] = field(default_factory=list)
    resumed_units: int = 0  # units recomputed without a new record
    vectors: int = 0
    catchup_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "db_id": self.db_id,
            "epoch": self.epoch,
            "units": list(self.units),
            "resumed_units": self.resumed_units,
            "vectors": self.vectors,
            "catchup_seconds": round(self.catchup_seconds, 6),
        }


class ReindexWorker:
    """Re-derive one database's preprocessing artifacts per epoch bump."""

    def __init__(
        self,
        pipeline,
        checkpoint_path: Union[str, Path],
        opener: Callable = open,
        registry=None,
        health=None,
        seconds_per_vector: float = SECONDS_PER_VECTOR,
    ):
        self.pipeline = pipeline
        self.registry = registry
        self.health = health
        self.seconds_per_vector = seconds_per_vector
        self.checkpoint = ReindexCheckpoint(checkpoint_path, opener=opener)
        self._lock = threading.Lock()
        self.reports: list[ReindexReport] = []
        self.total_catchup_seconds = 0.0
        self.last_error: Optional[str] = None
        self._queue: "queue.Queue[Optional[tuple[str, int]]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        if health is not None:
            health.register_probe("reindexer", self.probe)

    # ------------------------------------------------------------- probing

    def probe(self) -> dict:
        """HealthMonitor probe: queue depth, liveness, accounting.

        A coordinator reading ``pending > 0`` with ``alive: False`` sees
        a wedged reindexer — degraded (stale artifacts keep serving
        behind the epoch guard) rather than dead.
        """
        payload = {
            "pending": self._queue.qsize(),
            "alive": self._thread.is_alive() if self._thread else False,
            "completed": len(self.reports),
            "catchup_seconds": round(self.total_catchup_seconds, 6),
        }
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload

    # ---------------------------------------------------------- foreground

    def reindex(self, db_id: str, epoch: Optional[int] = None) -> ReindexReport:
        """Bring one database's artifacts up to ``epoch``.

        Every unit is recomputed in memory (a resumed process has no
        artifacts to reuse); checkpoint records are appended only for
        units the file does not already carry, which is what makes an
        interrupted-and-resumed checkpoint byte-identical to an
        uninterrupted one.  Raises :class:`DoubleReindexError` when the
        ``(db_id, epoch)`` pair already has a ``done`` record.
        """
        if epoch is None:
            if self.registry is None:
                raise ValueError("epoch is required without a registry")
            epoch = self.registry.epoch(db_id)
        with self._lock:
            report = self._reindex_locked(db_id, epoch)
        if self.health is not None:
            self.health.record("reindex", True)
        return report

    def _reindex_locked(self, db_id: str, epoch: int) -> ReindexReport:
        if (db_id, epoch) in self.checkpoint.done:
            raise DoubleReindexError(db_id, epoch)
        built = self.pipeline.benchmark.databases[db_id]
        tables = sorted(t.name for t in built.schema.tables)
        units = ["schema"] + [f"values:{t}" for t in tables] + ["fewshot"]
        report = ReindexReport(db_id=db_id, epoch=epoch, units=units)
        if self.checkpoint._rec == 0:
            self.checkpoint.append(
                {"type": "header", "version": 2, "config": {"kind": "reindex"}}
            )
        if (db_id, epoch) not in self.checkpoint.started:
            self.checkpoint.append(
                {"type": "start", "db_id": db_id, "epoch": epoch, "units": units}
            )
            self.checkpoint.started.add((db_id, epoch))
        pre = self._rebuild_units(db_id, epoch, built, tables, report)
        # The swap is atomic from the serving path's point of view: the
        # old artifacts answer every request until the new object lands.
        self.pipeline.databases[db_id] = pre
        report.catchup_seconds = report.vectors * self.seconds_per_vector
        self.checkpoint.append(
            {
                "type": "done",
                "db_id": db_id,
                "epoch": epoch,
                "vectors": report.vectors,
                "catchup_seconds": round(report.catchup_seconds, 6),
            }
        )
        self.checkpoint.done.add((db_id, epoch))
        self.reports.append(report)
        self.total_catchup_seconds += report.catchup_seconds
        return report

    def _rebuild_units(self, db_id, epoch, built, tables, report):
        from repro.core.preprocessing import PreprocessedDatabase, ValueEntry
        from repro.schema.serialize import schema_to_prompt

        vectorizer = self.pipeline.vectorizer
        config = self.pipeline.config
        if config.vector_index == "hnsw":
            from repro.embedding.hnsw import HNSWIndex

            value_index = HNSWIndex(vectorizer.dimensions, seed=config.seed)
            column_index = HNSWIndex(vectorizer.dimensions, seed=config.seed)
        else:
            from repro.embedding.index import FlatIndex

            value_index = FlatIndex(vectorizer.dimensions)
            column_index = FlatIndex(vectorizer.dimensions)

        # -- unit: schema (column index + prompt) -------------------------
        keys: list[str] = []
        for table in built.schema.tables:
            for column in table.columns:
                key = f"{table.name}.{column.name}"
                doc = f"{table.name} {column.name} {column.description}"
                column_index.add(
                    key, vectorizer.embed(doc), payload=(table.name, column.name)
                )
                keys.append(key)
        self._finish_unit(db_id, epoch, "schema", len(keys), _digest(keys), report)

        # -- units: values per table --------------------------------------
        value_count = 0
        cursor = built.connection.cursor()
        schema_tables = {t.name: t for t in built.schema.tables}
        for name in tables:
            table = schema_tables[name]
            keys = []
            for column in table.columns:
                if not column.is_text:
                    continue
                cursor.execute(
                    f'SELECT DISTINCT "{column.name}" FROM "{table.name}" '
                    f'WHERE "{column.name}" IS NOT NULL'
                )
                for (value,) in cursor.fetchall():
                    text = str(value)
                    key = f"{table.name}.{column.name}={text}"
                    value_index.add(
                        key,
                        vectorizer.embed(text),
                        payload=ValueEntry(table.name, column.name, text),
                    )
                    keys.append(key)
            value_count += len(keys)
            self._finish_unit(
                db_id, epoch, f"values:{name}", len(keys), _digest(keys), report
            )

        # -- unit: few-shot re-embed --------------------------------------
        library = getattr(self.pipeline, "library", None)
        reembedded = (
            library.reindex_db(db_id) if library is not None else 0
        )
        self._finish_unit(
            db_id, epoch, "fewshot", reembedded,
            _digest([f"fewshot:{db_id}:{reembedded}"]), report,
        )

        return PreprocessedDatabase(
            schema=built.schema,
            value_index=value_index,
            column_index=column_index,
            schema_prompt=schema_to_prompt(built.schema),
            value_count=value_count,
        )

    def _finish_unit(self, db_id, epoch, unit, vectors, digest, report) -> None:
        report.vectors += vectors
        recorded = self.checkpoint.units.get((db_id, epoch, unit))
        if recorded is not None:
            # The crash lost the in-memory work but not the record: the
            # recomputation must match what was checkpointed, or the
            # world drifted between the two passes.
            if recorded.get("digest") != digest:
                raise LiveDataError(
                    f"reindex digest mismatch for {db_id!r} epoch {epoch} "
                    f"unit {unit!r}: checkpoint has {recorded.get('digest')}, "
                    f"recomputed {digest}"
                )
            report.resumed_units += 1
            return
        record = {
            "type": "unit",
            "db_id": db_id,
            "epoch": epoch,
            "unit": unit,
            "vectors": vectors,
            "digest": digest,
        }
        self.checkpoint.append(record)
        self.checkpoint.units[(db_id, epoch, unit)] = record

    # ---------------------------------------------------------- background

    def enqueue(self, db_id: str, epoch: int) -> None:
        """Queue one epoch bump for the background thread."""
        self._queue.put((db_id, epoch))

    def watch(self, registry) -> None:
        """Subscribe to a registry: every bump enqueues a reindex."""
        registry.add_listener(self.enqueue)

    def start(self) -> "ReindexWorker":
        """Run the queue consumer on a daemon thread (degraded-not-dead:
        a failing reindex is recorded against health and the loop keeps
        draining)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._thread = threading.Thread(
            target=self._run, name="reindexer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._queue.put(None)
        self._thread.join(timeout=timeout)

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every queued bump has been processed."""
        self._queue.join()
        del timeout  # queue.join has no timeout; kept for API symmetry

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                db_id, epoch = item
                try:
                    self.reindex(db_id, epoch=epoch)
                except DoubleReindexError:
                    # a restart may replay a bump the checkpoint already
                    # carries; that is the resume path, not a failure
                    pass
                except Exception as exc:
                    self.last_error = f"{type(exc).__name__}: {exc}"
                    if self.health is not None:
                        self.health.record("reindex", False, detail=self.last_error)
            finally:
                self._queue.task_done()

    def close(self) -> None:
        self.stop()
        self.checkpoint.close()
