"""Seeded, replayable live mutations against built benchmark databases.

The :class:`MutationDriver` is the execution-layer chaos source of the
live-data world: it applies real DDL/DML — add/drop column, rename
table, value churn — to a :class:`~repro.datasets.build.BuiltDatabase`'s
SQLite connection *and* its schema model, then bumps the database's
``schema_epoch`` in the :class:`~repro.livedata.epoch.EpochRegistry`.

Design constraints, in order:

* **Deterministic and schedule-independent.**  Every choice (database,
  mutation kind, table, values) derives from ``stable_hash(seed,
  counter, …)`` — the same seed replays the same mutation sequence on
  any machine, which the drift-fuzz certifier's two-run diff relies on.
* **Pipeline-survivable.**  Mutations must never break previously valid
  gold SQL: dropped columns are only ever columns a *previous mutation
  added*, and a renamed table leaves compatibility views behind for
  every historical name, so SQL generated at any epoch still executes
  at any later epoch (scoring replays all answers against the final
  state).
* **Rebuild-replayable.**  ``BuiltDatabase.rebuild`` (the executor's
  reconnect recipe) is wrapped to re-apply the mutation log after
  recreating the pristine content, so a chaos-recycled connection does
  not silently time-travel the database back to epoch 0.
"""

from __future__ import annotations

import re
import sqlite3
import threading
from dataclasses import dataclass, replace
from typing import Optional

from repro.datasets.build import Benchmark, BuiltDatabase
from repro.livedata.epoch import EpochRegistry
from repro.schema.model import Column, Database
from repro.storage.faults import stable_hash

__all__ = ["MutationEvent", "MutationDriver", "MUTATION_KINDS"]

#: the drawable mutation kinds; value churn is deliberately twice as
#: likely — DML dominates DDL in any real write stream
MUTATION_KINDS = (
    "value_churn",
    "add_column",
    "value_churn",
    "rename_table",
    "drop_column",
)

_RENAME_SUFFIX = re.compile(r"__r\d+$")


@dataclass(frozen=True)
class MutationEvent:
    """One applied mutation: what changed, at which epoch."""

    db_id: str
    epoch: int
    kind: str
    detail: str
    statements: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "db_id": self.db_id,
            "epoch": self.epoch,
            "kind": self.kind,
            "detail": self.detail,
            "statements": list(self.statements),
        }


class MutationDriver:
    """Apply seeded live mutations to a benchmark's databases."""

    def __init__(
        self,
        benchmark: Benchmark,
        registry: EpochRegistry,
        seed: int = 0,
        kinds: tuple[str, ...] = MUTATION_KINDS,
    ):
        self.benchmark = benchmark
        self.registry = registry
        self.seed = seed
        if not kinds:
            raise ValueError("at least one mutation kind is required")
        # ALTER TABLE … DROP COLUMN needs SQLite >= 3.35; on an older
        # library the kind is excluded from the pool up front so the
        # draw sequence stays deterministic for the whole campaign.
        if sqlite3.sqlite_version_info < (3, 35, 0):
            kinds = tuple(k for k in kinds if k != "drop_column") or ("value_churn",)
        self.kinds = kinds
        self._lock = threading.Lock()
        self._counter = 0
        self.events: list[MutationEvent] = []
        #: db_id → statements applied so far, for rebuild replay
        self._applied: dict[str, list[str]] = {}
        #: db_id → column names added by mutations (drop candidates)
        self._drift_columns: dict[str, list[tuple[str, str]]] = {}
        #: db_id → {current table name: [historical names]}
        self._aliases: dict[str, dict[str, list[str]]] = {}
        self._wrapped_rebuilds: set[str] = set()

    # -------------------------------------------------------------- drawing

    def _draw(self, *parts: object) -> int:
        return stable_hash(self.seed, "mutation", *parts)

    def _pick(self, options: list, *parts: object):
        return options[self._draw(*parts) % len(options)]

    # -------------------------------------------------------------- applying

    def mutate(self, db_id: Optional[str] = None) -> MutationEvent:
        """Apply the next seeded mutation (optionally pinned to one db).

        Returns the applied :class:`MutationEvent`; the database's epoch
        has already been bumped (listeners fired) when this returns.
        """
        with self._lock:
            counter = self._counter
            self._counter += 1
            if db_id is None:
                db_id = self._pick(sorted(self.benchmark.databases), counter, "db")
            built = self.benchmark.databases[db_id]
            kind = self._pick(list(self.kinds), counter, "kind")
            if kind == "drop_column" and not self._drift_columns.get(db_id):
                kind = "value_churn"  # nothing droppable yet
            apply = getattr(self, f"_apply_{kind}")
            detail, statements = apply(db_id, built, counter)
            self._ensure_rebuild_replays(db_id, built)
            self._applied.setdefault(db_id, []).extend(statements)
        epoch = self.registry.bump(db_id)
        event = MutationEvent(
            db_id=db_id,
            epoch=epoch,
            kind=kind,
            detail=detail,
            statements=tuple(statements),
        )
        self.events.append(event)
        return event

    def _execute(self, built: BuiltDatabase, statements: list[str]) -> None:
        for statement in statements:
            built.connection.execute(statement)
        built.connection.commit()

    def _ensure_rebuild_replays(self, db_id: str, built: BuiltDatabase) -> None:
        """Wrap ``rebuild`` so a reconnect replays the mutation log."""
        if db_id in self._wrapped_rebuilds or built.rebuild is None:
            return
        self._wrapped_rebuilds.add(db_id)
        pristine = built.rebuild

        def rebuild() -> sqlite3.Connection:
            connection = pristine()
            for statement in self._applied.get(db_id, ()):
                connection.execute(statement)
            connection.commit()
            return connection

        built.rebuild = rebuild

    # ----------------------------------------------------------- value churn

    def _apply_value_churn(
        self, db_id: str, built: BuiltDatabase, counter: int
    ) -> tuple[str, list[str]]:
        """INSERT a fresh row with previously unseen values."""
        tables = [t for t in built.schema.tables if not self._is_view_backed(db_id, t.name)]
        table = self._pick(tables or list(built.schema.tables), counter, "table")
        values = []
        for column in table.columns:
            values.append(self._literal(column, counter))
        statement = (
            f'INSERT INTO "{table.name}" ({", ".join(self._quoted_columns(table))}) '
            f"VALUES ({', '.join(values)})"
        )
        statements = [statement]
        self._execute(built, statements)
        return f"insert into {table.name}", statements

    def _is_view_backed(self, db_id: str, name: str) -> bool:
        """True when ``name`` is a compatibility view, not a real table."""
        for historical in self._aliases.get(db_id, {}).values():
            if name in historical:
                return True
        return False

    @staticmethod
    def _quoted_columns(table) -> list[str]:
        return [f'"{c.name}"' for c in table.columns]

    @staticmethod
    def _literal(column: Column, counter: int) -> str:
        type_name = column.type_name.upper()
        if type_name in ("INTEGER", "INT"):
            return str(900_000 + counter)
        if type_name == "REAL":
            return f"{900_000 + counter}.5"
        if type_name in ("DATE", "DATETIME"):
            return f"'2099-01-{(counter % 28) + 1:02d}'"
        if column.is_primary:
            return f"'drift-pk-{counter}'"
        return f"'drift value {counter}'"

    # ------------------------------------------------------------ add column

    def _apply_add_column(
        self, db_id: str, built: BuiltDatabase, counter: int
    ) -> tuple[str, list[str]]:
        tables = [t for t in built.schema.tables if not self._is_view_backed(db_id, t.name)]
        table = self._pick(tables or list(built.schema.tables), counter, "table")
        name = f"drift_extra_{counter}"
        default = f"drift default {counter}"
        statements = [
            f'ALTER TABLE "{table.name}" ADD COLUMN "{name}" TEXT '
            f"DEFAULT '{default}'"
        ]
        self._execute(built, statements)
        column = Column(
            name=name,
            type_name="TEXT",
            description=f"live column added at mutation {counter}",
            value_examples=(default,),
        )
        new_table = replace(table, columns=table.columns + (column,))
        self._swap_table(built, table.name, new_table)
        self._drift_columns.setdefault(db_id, []).append((table.name, name))
        return f"add column {table.name}.{name}", statements

    # ----------------------------------------------------------- drop column

    def _apply_drop_column(
        self, db_id: str, built: BuiltDatabase, counter: int
    ) -> tuple[str, list[str]]:
        candidates = self._drift_columns[db_id]
        table_name, column_name = self._pick(candidates, counter, "drop")
        candidates.remove((table_name, column_name))
        statements = [f'ALTER TABLE "{table_name}" DROP COLUMN "{column_name}"']
        self._execute(built, statements)
        table = built.schema.table(table_name)
        new_table = replace(
            table,
            columns=tuple(c for c in table.columns if c.name != column_name),
        )
        self._swap_table(built, table_name, new_table)
        return f"drop column {table_name}.{column_name}", statements

    # ---------------------------------------------------------- rename table

    def _apply_rename_table(
        self, db_id: str, built: BuiltDatabase, counter: int
    ) -> tuple[str, list[str]]:
        tables = [t for t in built.schema.tables if not self._is_view_backed(db_id, t.name)]
        table = self._pick(tables or list(built.schema.tables), counter, "table")
        current = table.name
        base = _RENAME_SUFFIX.sub("", current)
        new_name = f"{base}__r{counter}"
        aliases = self._aliases.setdefault(db_id, {})
        historical = aliases.pop(current, []) + [current]
        statements = [f'DROP VIEW IF EXISTS "{alias}"' for alias in historical[:-1]]
        statements.append(f'ALTER TABLE "{current}" RENAME TO "{new_name}"')
        statements.extend(
            f'CREATE VIEW "{alias}" AS SELECT * FROM "{new_name}"'
            for alias in historical
        )
        self._execute(built, statements)
        aliases[new_name] = historical
        # Drift columns ride along with their renamed table so a later
        # drop targets the live physical name.
        self._drift_columns[db_id] = [
            (new_name if t == current else t, c)
            for (t, c) in self._drift_columns.get(db_id, [])
        ]
        new_table = replace(table, name=new_name)
        self._swap_table(built, current, new_table, renamed_from=current)
        return f"rename table {current} -> {new_name}", statements

    # ------------------------------------------------------- schema plumbing

    @staticmethod
    def _swap_table(
        built: BuiltDatabase,
        old_name: str,
        new_table,
        renamed_from: Optional[str] = None,
    ) -> None:
        """Republish ``built.schema`` with ``old_name`` replaced."""
        schema: Database = built.schema
        tables = tuple(
            new_table if t.name == old_name else t for t in schema.tables
        )
        foreign_keys = schema.foreign_keys
        if renamed_from is not None:
            foreign_keys = tuple(
                replace(
                    fk,
                    table=new_table.name if fk.table == renamed_from else fk.table,
                    ref_table=(
                        new_table.name if fk.ref_table == renamed_from else fk.ref_table
                    ),
                )
                for fk in foreign_keys
            )
        built.schema = replace(schema, tables=tables, foreign_keys=foreign_keys)

    # -------------------------------------------------------------- reporting

    def log_dict(self) -> list[dict]:
        """JSON-ready mutation log (ordered)."""
        return [event.to_dict() for event in self.events]
