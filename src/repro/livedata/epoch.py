"""The epoch-versioned catalog: one monotone ``schema_epoch`` per database.

Every database starts at epoch 0 (the frozen world every earlier layer
assumed).  A DDL/DML mutation bumps the epoch; everything that derives
from the catalog — cache keys, journal commit records, reindex
checkpoints — carries the epoch it was built against, so staleness is a
simple integer comparison rather than a content diff.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["EpochRegistry"]


class EpochRegistry:
    """Thread-safe monotone ``schema_epoch`` counter per ``db_id``.

    Listeners (``fn(db_id, epoch)``) fire on every bump — the reindex
    worker enqueues catch-up work from one, the serving harness
    invalidates cache tiers from another.  Listeners run outside the
    registry lock in registration order, on the bumping thread.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._epochs: dict[str, int] = {}
        self._listeners: list[Callable[[str, int], None]] = []

    def epoch(self, db_id: str) -> int:
        """Current ``schema_epoch`` of ``db_id`` (0 when never mutated)."""
        with self._lock:
            return self._epochs.get(db_id, 0)

    def bump(self, db_id: str) -> int:
        """Advance ``db_id``'s epoch by one; returns the new epoch."""
        with self._lock:
            epoch = self._epochs.get(db_id, 0) + 1
            self._epochs[db_id] = epoch
            listeners = list(self._listeners)
        for listener in listeners:
            listener(db_id, epoch)
        return epoch

    def advance(self, db_id: str, epoch: int) -> int:
        """Move ``db_id`` to at least ``epoch``; returns the new epoch.

        The cross-process path: a cluster worker receiving an
        ``invalidate`` broadcast adopts the coordinator's epoch number
        instead of re-counting bumps locally.  Monotone — a stale or
        reordered broadcast (``epoch`` at or below the current value)
        is a no-op and fires no listeners.
        """
        with self._lock:
            current = self._epochs.get(db_id, 0)
            if epoch <= current:
                return current
            self._epochs[db_id] = epoch
            listeners = list(self._listeners)
        for listener in listeners:
            listener(db_id, epoch)
        return epoch

    def add_listener(self, listener: Callable[[str, int], None]) -> None:
        """Subscribe to future bumps."""
        with self._lock:
            self._listeners.append(listener)

    def snapshot(self) -> dict[str, int]:
        """JSON-ready ``{db_id: epoch}`` for every db that ever bumped."""
        with self._lock:
            return dict(sorted(self._epochs.items()))

    def mutated_dbs(self) -> list[str]:
        """Databases with a non-zero epoch, sorted."""
        with self._lock:
            return sorted(db for db, epoch in self._epochs.items() if epoch)
