"""Vectorizer tests: normalization, robustness and hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.vectorizer import HashingVectorizer, cosine_similarity


@pytest.fixture(scope="module")
def vec():
    return HashingVectorizer()


class TestBasics:
    def test_default_dimensions(self, vec):
        assert vec.embed("hello").shape == (512,)

    def test_unit_norm(self, vec):
        v = vec.embed("some text here")
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-5)

    def test_empty_string_is_zero(self, vec):
        assert not vec.embed("").any()

    def test_punctuation_only_is_zero(self, vec):
        assert not vec.embed("!!! ...").any()

    def test_deterministic(self, vec):
        a = vec.embed("RUNNING DEBT")
        b = vec.embed("RUNNING DEBT")
        assert np.array_equal(a, b)

    def test_batch_matches_single(self, vec):
        batch = vec.embed_batch(["one", "two"])
        assert np.array_equal(batch[0], vec.embed("one"))
        assert batch.shape == (2, 512)

    def test_empty_batch(self, vec):
        assert vec.embed_batch([]).shape == (0, 512)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            HashingVectorizer(dimensions=0)

    def test_invalid_ngram_range(self):
        with pytest.raises(ValueError):
            HashingVectorizer(ngram_range=(3, 2))


class TestRobustness:
    """The properties that make this a valid bge substitute."""

    def test_case_insensitive(self, vec):
        assert cosine_similarity(vec.embed("JOHN DOE"), vec.embed("john doe")) == (
            pytest.approx(1.0, abs=1e-5)
        )

    def test_punctuation_collapsed(self, vec):
        sim = cosine_similarity(vec.embed("first_date"), vec.embed("first date"))
        assert sim == pytest.approx(1.0, abs=1e-5)

    def test_typo_stays_close(self, vec):
        sim = cosine_similarity(
            vec.embed("RUNNING DEBT"), vec.embed("Running Det")
        )
        assert sim > 0.5

    def test_unrelated_stays_far(self, vec):
        sim = cosine_similarity(
            vec.embed("immunoglobulin level"), vec.embed("hockey arena tickets")
        )
        assert sim < 0.3

    def test_shared_word_closer_than_none(self, vec):
        base = vec.embed("hockey player")
        shared = cosine_similarity(base, vec.embed("hockey team"))
        unrelated = cosine_similarity(base, vec.embed("loan amount"))
        assert shared > unrelated


class TestCosine:
    def test_zero_vector_similarity(self):
        z = np.zeros(4, dtype=np.float32)
        v = np.ones(4, dtype=np.float32)
        assert cosine_similarity(z, v) == 0.0

    def test_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite(self):
        v = np.array([1.0, 0.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=40))
    def test_norm_bounded(self, text):
        v = HashingVectorizer().embed(text)
        norm = float(np.linalg.norm(v))
        assert norm == pytest.approx(1.0, abs=1e-4) or norm == 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1,
            max_size=40,
        )
    )
    def test_case_fold_invariance(self, text):
        vec = HashingVectorizer()
        a = vec.embed(text)
        b = vec.embed(text.upper())
        assert np.allclose(a, b, atol=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(st.text(min_size=1, max_size=30), st.text(min_size=1, max_size=30))
    def test_similarity_symmetric(self, s, t):
        vec = HashingVectorizer()
        assert cosine_similarity(vec.embed(s), vec.embed(t)) == pytest.approx(
            cosine_similarity(vec.embed(t), vec.embed(s)), abs=1e-6
        )
