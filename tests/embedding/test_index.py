"""Flat index tests."""

import numpy as np
import pytest

from repro.embedding.index import FlatIndex
from repro.embedding.vectorizer import HashingVectorizer


@pytest.fixture
def index():
    return FlatIndex(dimensions=8)


def unit(*values):
    v = np.array(values, dtype=np.float32)
    return v / np.linalg.norm(v)


class TestFlatIndex:
    def test_empty_search(self, index):
        assert index.search(unit(1, 0, 0, 0, 0, 0, 0, 0)) == []

    def test_k_zero(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        assert index.search(unit(1, 0, 0, 0, 0, 0, 0, 0), k=0) == []

    def test_exact_match_first(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        index.add("b", unit(0, 1, 0, 0, 0, 0, 0, 0))
        hits = index.search(unit(1, 0.1, 0, 0, 0, 0, 0, 0), k=2)
        assert hits[0].key == "a"
        assert hits[0].score > hits[1].score

    def test_scores_descending(self, index):
        rng = np.random.default_rng(0)
        for i in range(50):
            index.add(str(i), rng.normal(size=8).astype(np.float32))
        hits = index.search(rng.normal(size=8).astype(np.float32), k=10)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_size(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        assert len(index.search(unit(1, 0, 0, 0, 0, 0, 0, 0), k=100)) == 1

    def test_payload_preserved(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0), payload={"x": 1})
        (hit,) = index.search(unit(1, 0, 0, 0, 0, 0, 0, 0), k=1)
        assert hit.payload == {"x": 1}

    def test_wrong_shape_rejected(self, index):
        with pytest.raises(ValueError):
            index.add("a", np.zeros(3, dtype=np.float32))

    def test_zero_vector_never_matches(self, index):
        index.add("zero", np.zeros(8, dtype=np.float32))
        index.add("one", unit(1, 0, 0, 0, 0, 0, 0, 0))
        hits = index.search(unit(1, 0, 0, 0, 0, 0, 0, 0), k=2)
        assert hits[0].key == "one"
        assert hits[1].score == pytest.approx(0.0)

    def test_len(self, index):
        assert len(index) == 0
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        assert len(index) == 1

    def test_add_after_search_works(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        index.search(unit(1, 0, 0, 0, 0, 0, 0, 0))
        index.add("b", unit(0, 1, 0, 0, 0, 0, 0, 0))
        hits = index.search(unit(0, 1, 0, 0, 0, 0, 0, 0), k=1)
        assert hits[0].key == "b"

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FlatIndex(0)

    def test_end_to_end_with_vectorizer(self):
        vec = HashingVectorizer()
        index = FlatIndex(vec.dimensions)
        values = ["RUNNING OK", "RUNNING DEBT", "FINISHED OK", "FINISHED DEBT"]
        for value in values:
            index.add(value, vec.embed(value), payload=value)
        hits = index.search(vec.embed("running debt"), k=1)
        assert hits[0].key == "RUNNING DEBT"


class TestRemove:
    def test_remove_returns_count_and_shrinks_len(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        index.add("a", unit(0, 1, 0, 0, 0, 0, 0, 0))
        index.add("b", unit(0, 0, 1, 0, 0, 0, 0, 0))
        assert index.remove("a") == 2
        assert len(index) == 1
        assert index.remove("a") == 0

    def test_removed_key_never_surfaces(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        index.add("b", unit(0, 1, 0, 0, 0, 0, 0, 0))
        index.remove("a")
        hits = index.search(unit(1, 0, 0, 0, 0, 0, 0, 0), k=5)
        assert [h.key for h in hits] == ["b"]

    def test_remove_after_search_invalidates_the_matrix(self, index):
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0))
        index.add("b", unit(0, 1, 0, 0, 0, 0, 0, 0))
        index.search(unit(1, 0, 0, 0, 0, 0, 0, 0))  # builds the cache
        index.remove("a")
        hits = index.search(unit(1, 0, 0, 0, 0, 0, 0, 0), k=5)
        assert [h.key for h in hits] == ["b"]

    def test_readd_after_remove(self, index):
        """The reindex path: drop the stale entry, add its re-embedded
        replacement under the same key."""
        index.add("a", unit(1, 0, 0, 0, 0, 0, 0, 0), payload="old")
        index.remove("a")
        index.add("a", unit(0, 1, 0, 0, 0, 0, 0, 0), payload="new")
        (hit,) = index.search(unit(0, 1, 0, 0, 0, 0, 0, 0), k=1)
        assert hit.key == "a"
        assert hit.payload == "new"
        assert len(index) == 1
