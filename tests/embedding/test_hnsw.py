"""HNSW index tests, including recall-vs-exact property checks."""

import numpy as np
import pytest

from repro.embedding.hnsw import HNSWIndex
from repro.embedding.index import FlatIndex
from repro.embedding.vectorizer import HashingVectorizer


def random_vectors(n, d, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, d)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


class TestBasics:
    def test_empty_search(self):
        index = HNSWIndex(8)
        assert index.search(np.ones(8, dtype=np.float32)) == []

    def test_single_item(self):
        index = HNSWIndex(8)
        v = np.ones(8, dtype=np.float32)
        index.add("only", v)
        hits = index.search(v, k=3)
        assert [h.key for h in hits] == ["only"]
        assert hits[0].score == pytest.approx(1.0, abs=1e-5)

    def test_wrong_shape_rejected(self):
        index = HNSWIndex(8)
        with pytest.raises(ValueError):
            index.add("a", np.zeros(4, dtype=np.float32))

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            HNSWIndex(8, m=1)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            HNSWIndex(0)

    def test_len(self):
        index = HNSWIndex(8)
        for i, v in enumerate(random_vectors(5, 8)):
            index.add(str(i), v)
        assert len(index) == 5

    def test_payloads(self):
        index = HNSWIndex(8)
        v = np.ones(8, dtype=np.float32)
        index.add("a", v, payload=123)
        assert index.search(v, k=1)[0].payload == 123

    def test_deterministic_given_seed(self):
        vectors = random_vectors(100, 16, seed=2)
        query = random_vectors(1, 16, seed=3)[0]
        results = []
        for _ in range(2):
            index = HNSWIndex(16, seed=7)
            for i, v in enumerate(vectors):
                index.add(str(i), v)
            results.append([h.key for h in index.search(query, k=5)])
        assert results[0] == results[1]

    def test_scores_descending(self):
        index = HNSWIndex(16, seed=1)
        for i, v in enumerate(random_vectors(200, 16)):
            index.add(str(i), v)
        hits = index.search(random_vectors(1, 16, seed=9)[0], k=10)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestRecall:
    @pytest.mark.parametrize("n", [100, 500])
    def test_recall_at_10_vs_flat(self, n):
        d = 32
        vectors = random_vectors(n, d, seed=4)
        flat = FlatIndex(d)
        hnsw = HNSWIndex(d, m=12, ef_construction=100, ef_search=64, seed=5)
        for i, v in enumerate(vectors):
            flat.add(str(i), v)
            hnsw.add(str(i), v)
        queries = random_vectors(20, d, seed=6)
        total = hits = 0
        for q in queries:
            exact = {h.key for h in flat.search(q, k=10)}
            approx = {h.key for h in hnsw.search(q, k=10)}
            hits += len(exact & approx)
            total += len(exact)
        assert hits / total >= 0.9

    def test_exact_duplicate_found(self):
        d = 16
        vectors = random_vectors(300, d, seed=8)
        index = HNSWIndex(d, seed=8)
        for i, v in enumerate(vectors):
            index.add(str(i), v)
        hits = index.search(vectors[137], k=1)
        assert hits[0].key == "137"

    def test_text_retrieval_end_to_end(self):
        vec = HashingVectorizer()
        index = HNSWIndex(vec.dimensions, seed=0)
        words = [f"category number {i}" for i in range(200)]
        for w in words:
            index.add(w, vec.embed(w))
        hits = index.search(vec.embed("Category Number 57"), k=3)
        assert hits[0].key == "category number 57"


class TestTombstoneRemove:
    def test_remove_returns_count_and_len_counts_live(self):
        index = HNSWIndex(8, seed=1)
        for i, v in enumerate(random_vectors(10, 8)):
            index.add(str(i), v)
        assert index.remove("3") == 1
        assert len(index) == 9
        assert index.remove("3") == 0  # already tombstoned

    def test_search_filters_tombstones(self):
        d = 16
        vectors = random_vectors(100, d, seed=4)
        index = HNSWIndex(d, seed=5)
        for i, v in enumerate(vectors):
            index.add(str(i), v)
        target = vectors[42]
        assert index.search(target, k=1)[0].key == "42"
        index.remove("42")
        hits = index.search(target, k=10)
        assert "42" not in {h.key for h in hits}
        assert len(hits) == 10  # ef widening still fills k past the dead

    def test_graph_stays_navigable_after_mass_removal(self):
        """Tombstoned nodes keep routing: recall against a flat rebuild
        of the survivors stays high even after a third of the index
        dies."""
        d = 16
        vectors = random_vectors(150, d, seed=6)
        index = HNSWIndex(d, m=12, ef_construction=100, ef_search=64, seed=7)
        flat = FlatIndex(d)
        for i, v in enumerate(vectors):
            index.add(str(i), v)
        removed = {str(i) for i in range(0, 150, 3)}
        for key in removed:
            assert index.remove(key) == 1
        for i, v in enumerate(vectors):
            if str(i) not in removed:
                flat.add(str(i), v)
        queries = random_vectors(10, d, seed=8)
        total = agree = 0
        for q in queries:
            exact = {h.key for h in flat.search(q, k=5)}
            approx = {h.key for h in index.search(q, k=5)}
            assert not (approx & removed)
            agree += len(exact & approx)
            total += len(exact)
        assert agree / total >= 0.8

    def test_readd_after_remove_serves_the_new_vector(self):
        index = HNSWIndex(8, seed=2)
        for i, v in enumerate(random_vectors(6, 8)):
            index.add(str(i), v)
        replacement = random_vectors(1, 8, seed=11)[0]
        index.remove("2")
        index.add("2", replacement, payload="fresh")
        hit = index.search(replacement, k=1)[0]
        assert hit.key == "2"
        assert hit.payload == "fresh"
        assert len(index) == 6
