"""Baseline system tests: construction, answering and relative ordering."""

import pytest

from repro.baselines.systems import (
    CHESS,
    DAILSQL,
    Distillery,
    MCSSQL,
    SFT_GPT_4O,
    ZeroShotGPT4,
    all_baselines,
)
from repro.evaluation.runner import evaluate_system
from repro.llm.skills import GPT_4O


class TestConstruction:
    def test_all_baselines_built(self, tiny_benchmark):
        systems = all_baselines(tiny_benchmark)
        assert len(systems) == 7
        names = [s.name for s in systems]
        assert names[0] == "GPT-4"
        assert names[-1] == "Distillery + GPT-4o (ft)"

    def test_every_baseline_answers(self, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        for system in all_baselines(tiny_benchmark):
            sql = system.answer(example)
            assert isinstance(sql, str) and sql

    def test_zero_shot_has_no_modules(self, tiny_benchmark):
        system = ZeroShotGPT4(tiny_benchmark)
        config = system.pipeline.config
        assert not config.use_extraction
        assert not config.use_refinement
        assert config.n_candidates == 1
        assert config.fewshot_style == "none"

    def test_dail_uses_fewshot(self, tiny_benchmark):
        assert DAILSQL(tiny_benchmark).pipeline.config.fewshot_style == "query_sql"

    def test_chess_uses_retrieval(self, tiny_benchmark):
        config = CHESS(tiny_benchmark).pipeline.config
        assert config.use_values_retrieval
        assert config.use_column_filtering

    def test_mcs_votes(self, tiny_benchmark):
        assert MCSSQL(tiny_benchmark).pipeline.config.n_candidates == 15

    def test_distillery_skill_profile(self, tiny_benchmark):
        system = Distillery(tiny_benchmark)
        assert system.pipeline.llm.skill.name == "gpt-4o-sft"
        assert not system.pipeline.config.use_extraction


class TestSFTProfile:
    def test_sft_stronger_than_base_on_sft_channels(self):
        assert SFT_GPT_4O.trick_miss_rate < GPT_4O.trick_miss_rate
        assert SFT_GPT_4O.hard_fail_rate < GPT_4O.hard_fail_rate
        assert SFT_GPT_4O.value_guess_rate > GPT_4O.value_guess_rate


class TestOrdering:
    """The qualitative Table 2 claim: zero-shot is the weakest and the
    strongest baselines still lose to the full OpenSearch-SQL pipeline
    (checked end-to-end on the tiny benchmark's dev split)."""

    @pytest.fixture(scope="class")
    def reports(self, tiny_benchmark):
        examples = tiny_benchmark.dev
        out = {}
        for system in (
            ZeroShotGPT4(tiny_benchmark),
            Distillery(tiny_benchmark),
        ):
            out[system.name] = evaluate_system(system, tiny_benchmark, examples)
        return out

    def test_distillery_beats_zero_shot(self, reports):
        assert (
            reports["Distillery + GPT-4o (ft)"].ex >= reports["GPT-4"].ex
        )

    def test_pipeline_competitive_with_distillery(
        self, reports, tiny_pipeline, tiny_benchmark
    ):
        from repro.evaluation.runner import evaluate_pipeline

        ours = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev)
        # On a tiny split we only require "not clearly worse".
        assert ours.ex >= reports["Distillery + GPT-4o (ft)"].ex - 10
