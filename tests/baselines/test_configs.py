"""Per-baseline configuration contracts: each baseline enables exactly the
modules the original system has (the DESIGN.md mapping)."""

import pytest

from repro.baselines.systems import (
    C3SQL,
    CHESS,
    DAILSQL,
    DINSQL,
    Distillery,
    MACSQL,
    MCSSQL,
    ZeroShotGPT4,
)


@pytest.fixture(scope="module")
def systems(tiny_benchmark):
    return {
        "zero": ZeroShotGPT4(tiny_benchmark),
        "din": DINSQL(tiny_benchmark),
        "dail": DAILSQL(tiny_benchmark),
        "mac": MACSQL(tiny_benchmark),
        "mcs": MCSSQL(tiny_benchmark),
        "c3": C3SQL(tiny_benchmark),
        "chess": CHESS(tiny_benchmark),
        "distillery": Distillery(tiny_benchmark),
    }


class TestModuleMapping:
    def test_only_opensearch_has_alignments(self, systems):
        for name, system in systems.items():
            assert not system.pipeline.config.use_alignments, name

    def test_schema_linking_systems(self, systems):
        # DIN, MAC, MCS, C3, CHESS do schema linking / column filtering.
        for name in ("din", "mac", "mcs", "c3", "chess"):
            assert systems[name].pipeline.config.use_column_filtering, name
        # Zero-shot, DAIL and Distillery ("death of schema linking") do not.
        for name in ("zero", "dail", "distillery"):
            assert not systems[name].pipeline.config.use_extraction, name

    def test_value_retrieval_only_in_chess(self, systems):
        assert systems["chess"].pipeline.config.use_values_retrieval
        for name in ("din", "dail", "mac", "mcs", "c3"):
            config = systems[name].pipeline.config
            assert not (config.use_extraction and config.use_values_retrieval), name

    def test_correction_systems(self, systems):
        for name in ("din", "mac", "chess"):
            assert systems[name].pipeline.config.use_correction, name
        for name in ("zero", "dail", "mcs", "c3", "distillery"):
            assert not (
                systems[name].pipeline.config.use_refinement
                and systems[name].pipeline.config.use_correction
            ), name

    def test_voting_systems(self, systems):
        assert systems["mcs"].pipeline.config.n_candidates > 1
        assert systems["c3"].pipeline.config.n_candidates > 1
        assert systems["distillery"].pipeline.config.n_candidates > 1
        for name in ("zero", "din", "dail", "mac"):
            assert not systems[name].pipeline.config.use_self_consistency, name

    def test_fewshot_systems(self, systems):
        assert systems["dail"].pipeline.config.fewshot_style == "query_sql"
        assert systems["mcs"].pipeline.config.fewshot_style == "query_sql"
        for name in ("zero", "c3", "chess", "distillery"):
            assert systems[name].pipeline.config.fewshot_style == "none", name

    def test_model_assignment(self, systems):
        # Pre-4o systems run on the GPT-4 profile; CHESS and Distillery on 4o.
        for name in ("zero", "din", "dail", "mac", "mcs", "c3"):
            assert systems[name].pipeline.llm.skill.name == "gpt-4", name
        assert systems["chess"].pipeline.llm.skill.name == "gpt-4o"
        assert systems["distillery"].pipeline.llm.skill.name == "gpt-4o-sft"

    def test_descriptions_present(self, systems):
        for system in systems.values():
            assert system.description
