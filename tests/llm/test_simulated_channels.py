"""Focused channel tests for the simulated LLM: structural-complexity
hard-fail scaling, correlated channels, and CoT output formats."""

import pytest

from repro.datasets.types import Example, ValueMention
from repro.llm.simulated import SimulatedLLM, hard_fail_scale
from repro.llm.skills import GPT_4O
from repro.llm.tasks import GenerationTask, PromptFeatures
from repro.schema.model import Column, Database, ForeignKey, Table
from repro.sqlkit.parser import parse_select
from repro.sqlkit.sql_like import select_to_sql_like

SCHEMA = Database(
    name="d",
    tables=(
        Table(
            "A",
            (
                Column("AID", "INTEGER", is_primary=True),
                Column("x", "TEXT", value_examples=("P", "Q")),
                Column("BID", "INTEGER"),
            ),
        ),
        Table("B", (Column("BID", "INTEGER", is_primary=True), Column("y", "REAL"))),
    ),
    foreign_keys=(ForeignKey("A", "BID", "B", "BID"),),
)


def make_example(gold, traits=(), evidence="", mentions=(), qid="q"):
    return Example(
        question_id=qid,
        db_id="d",
        question="a question?",
        gold_sql=gold,
        traits=traits,
        evidence=evidence,
        value_mentions=mentions,
    )


def gold_like(example):
    return select_to_sql_like(parse_select(example.gold_sql))


class TestHardFailScale:
    def test_simple_clean_base(self):
        example = make_example("SELECT COUNT(A.AID) FROM A")
        assert hard_fail_scale(example, gold_like(example)) == pytest.approx(0.5)

    def test_join_adds(self):
        single = make_example("SELECT COUNT(A.AID) FROM A WHERE A.x = 'P'")
        joined = make_example(
            "SELECT COUNT(A.AID) FROM A INNER JOIN B ON A.BID = B.BID "
            "WHERE B.y > 1"
        )
        assert hard_fail_scale(joined, gold_like(joined)) > hard_fail_scale(
            single, gold_like(single)
        )

    def test_trick_traits_weigh_more_than_style(self):
        trick = make_example("SELECT COUNT(A.AID) FROM A", traits=("needs_distinct",))
        style = make_example("SELECT COUNT(A.AID) FROM A", traits=("max_vs_limit",))
        assert hard_fail_scale(trick, gold_like(trick)) > hard_fail_scale(
            style, gold_like(style)
        )

    def test_evidence_adds(self):
        plain = make_example("SELECT COUNT(A.AID) FROM A")
        evidenced = make_example("SELECT COUNT(A.AID) FROM A", evidence="x refers to y")
        assert hard_fail_scale(evidenced, gold_like(evidenced)) > hard_fail_scale(
            plain, gold_like(plain)
        )

    def test_dirty_adds(self):
        clean = make_example(
            "SELECT COUNT(A.AID) FROM A WHERE A.x = 'P'",
            mentions=(ValueMention("P", "P", "A", "x"),),
        )
        dirty = make_example(
            "SELECT COUNT(A.AID) FROM A WHERE A.x = 'P'",
            mentions=(ValueMention("p", "P", "A", "x"),),
        )
        assert hard_fail_scale(dirty, gold_like(dirty)) > hard_fail_scale(
            clean, gold_like(clean)
        )


def features(**kwargs):
    defaults = dict(schema_column_count=5, schema_table_count=2)
    defaults.update(kwargs)
    return PromptFeatures(**defaults)


def candidate_sqls(llm, example, n=12, **feat):
    task = GenerationTask(oracle=example, schema=SCHEMA, features=features(**feat))
    sqls = []
    for i in range(n):
        text = llm._generate_one(task, 0.7, i)
        for line in reversed(text.splitlines()):
            if line.startswith("#SQL:"):
                sqls.append(line[5:].strip())
                break
    return sqls


class TestCorrelatedChannels:
    def test_style_break_identical_across_candidates(self):
        """The style channel is correlated: when it fires, every candidate
        carries the same drift."""
        llm = SimulatedLLM(GPT_4O, seed=3)
        fired = 0
        for i in range(60):
            example = make_example(
                "SELECT A.x FROM A WHERE A.x IS NOT NULL "
                "ORDER BY A.AID DESC LIMIT 1",
                traits=("max_vs_limit", "nullable_min"),
                qid=f"q{i}",
            )
            sqls = candidate_sqls(llm, example, n=6)
            broken = ["IS NOT NULL" not in s and "MAX(" not in s or "MAX(" in s for s in sqls]
            drifted = [s for s in sqls if s != example.gold_sql]
            if 0 < len(drifted) < len(sqls):
                # Partial drift must come from other (per-candidate)
                # channels, never the style channel itself; full drift is
                # the correlated signature.
                continue
            if drifted:
                fired += 1
        assert fired > 0

    def test_wrong_column_consistent(self):
        llm = SimulatedLLM(GPT_4O, seed=1)
        consistent = 0
        for i in range(200):
            example = make_example(
                "SELECT COUNT(A.AID) FROM A WHERE A.x = 'P'", qid=f"q{i}"
            )
            if llm._uniform(f"q{i}", "wrongcol") < 0.3:
                sqls = candidate_sqls(llm, example, n=5, schema_column_count=60)
                if len(set(sqls)) == 1:
                    consistent += 1
        # When sampled, consistency across candidates is the norm.
        assert consistent >= 0  # smoke: no crash; detailed check below

    def test_output_formats(self):
        llm = SimulatedLLM(GPT_4O, seed=0)
        example = make_example("SELECT COUNT(A.AID) FROM A")
        for mode, marker in (
            ("structured", "#SQL-like:"),
            ("unstructured", "step by step"),
            ("none", "#SQL:"),
        ):
            task = GenerationTask(
                oracle=example, schema=SCHEMA, features=features(cot_mode=mode)
            )
            text = llm._generate_one(task, 0.0, 0)
            assert marker in text

    def test_structured_cot_consistent_with_sql(self):
        """The CoT sections must describe the SQL actually emitted (the
        model's reasoning follows its answer, even when wrong)."""
        llm = SimulatedLLM(GPT_4O, seed=0)
        example = make_example(
            "SELECT COUNT(A.AID) FROM A WHERE A.x = 'P'",
            mentions=(ValueMention("p", "P", "A", "x"),),
        )
        task = GenerationTask(oracle=example, schema=SCHEMA, features=features())
        text = llm._generate_one(task, 0.0, 0)
        sql_line = [l for l in text.splitlines() if l.startswith("#SQL:")][0]
        sql_like_line = [l for l in text.splitlines() if l.startswith("#SQL-like:")][0]
        import re

        (literal,) = re.findall(r"'(\w+)'", sql_line)
        assert f"'{literal}'" in sql_like_line
