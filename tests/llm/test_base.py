"""LLM base type tests: token counting, usage arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.base import LLMResponse, TokenUsage, count_tokens


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_single_word(self):
        assert count_tokens("hello") == 1

    def test_words_and_punct(self):
        assert count_tokens("a, b") == 3

    def test_long_word_surcharge(self):
        assert count_tokens("internationalization") > 1

    def test_monotone_in_concatenation(self):
        a, b = "select count", "from table"
        assert count_tokens(a + " " + b) == count_tokens(a) + count_tokens(b)

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=200))
    def test_nonnegative(self, text):
        assert count_tokens(text) >= 0

    @settings(max_examples=60, deadline=None)
    @given(st.text(min_size=1, max_size=100))
    def test_extension_monotone(self, text):
        assert count_tokens(text + " extra") >= count_tokens(text)


class TestTokenUsage:
    def test_total(self):
        assert TokenUsage(10, 5).total_tokens == 15

    def test_add(self):
        total = TokenUsage(10, 5) + TokenUsage(1, 2)
        assert total == TokenUsage(11, 7)

    def test_default_zero(self):
        assert TokenUsage().total_tokens == 0

    def test_response_defaults(self):
        response = LLMResponse(text="hi")
        assert response.usage.total_tokens == 0
        assert response.latency_seconds == 0.0
