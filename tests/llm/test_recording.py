"""Record/replay client tests: cassette round trip and determinism."""

import pytest

from repro.llm.recording import RecordingClient, ReplayClient, ReplayMiss
from repro.llm.simulated import SimulatedLLM
from repro.llm.tasks import GenerationTask, PromptFeatures
from repro.datasets.types import Example
from repro.schema.model import Column, Database, Table

SCHEMA = Database(
    name="d",
    tables=(Table("T", (Column("ID", "INTEGER", is_primary=True), Column("X", "TEXT"))),),
)


def task(qid="q1"):
    example = Example(
        question_id=qid,
        db_id="d",
        question="How many rows?",
        gold_sql="SELECT COUNT(T.ID) FROM T",
    )
    return GenerationTask(
        oracle=example, schema=SCHEMA, features=PromptFeatures(schema_column_count=2)
    )


class TestRecordReplay:
    def test_round_trip(self, tmp_path):
        cassette = tmp_path / "cassette.jsonl"
        recorder = RecordingClient(SimulatedLLM(seed=1), cassette)
        original = recorder.complete("the prompt", temperature=0.7, n=3, task=task())

        replay = ReplayClient(cassette)
        replayed = replay.complete("the prompt", temperature=0.7, n=3)
        assert [r.text for r in replayed] == [r.text for r in original]
        assert replayed[0].usage == original[0].usage

    def test_replay_needs_no_task(self, tmp_path):
        cassette = tmp_path / "c.jsonl"
        recorder = RecordingClient(SimulatedLLM(seed=1), cassette)
        recorder.complete("p", task=task())
        replay = ReplayClient(cassette)
        assert replay.complete("p")  # no task payload required

    def test_miss_raises(self, tmp_path):
        cassette = tmp_path / "c.jsonl"
        RecordingClient(SimulatedLLM(seed=1), cassette).complete("p", task=task())
        replay = ReplayClient(cassette)
        with pytest.raises(ReplayMiss):
            replay.complete("different prompt")

    def test_params_part_of_key(self, tmp_path):
        cassette = tmp_path / "c.jsonl"
        RecordingClient(SimulatedLLM(seed=1), cassette).complete(
            "p", temperature=0.7, n=2, task=task()
        )
        replay = ReplayClient(cassette)
        with pytest.raises(ReplayMiss):
            replay.complete("p", temperature=0.0, n=2)

    def test_repeated_prompts_replayed_in_order(self, tmp_path):
        cassette = tmp_path / "c.jsonl"
        recorder = RecordingClient(SimulatedLLM(seed=1), cassette)
        first = recorder.complete("p", temperature=0.7, n=1, task=task("a"))
        second = recorder.complete("p", temperature=0.7, n=1, task=task("b"))

        replay = ReplayClient(cassette)
        assert replay.complete("p", temperature=0.7)[0].text == first[0].text
        assert replay.complete("p", temperature=0.7)[0].text == second[0].text
        # Extra calls repeat the last occurrence instead of failing.
        assert replay.complete("p", temperature=0.7)[0].text == second[0].text

    def test_missing_cassette(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ReplayClient(tmp_path / "nope.jsonl")

    def test_len(self, tmp_path):
        cassette = tmp_path / "c.jsonl"
        recorder = RecordingClient(SimulatedLLM(seed=1), cassette)
        recorder.complete("a", task=task("a"))
        recorder.complete("b", task=task("b"))
        assert len(ReplayClient(cassette)) == 2

    def test_pipeline_runs_on_replay(self, tiny_benchmark, tmp_path):
        """A full pipeline recorded once can be re-run from the cassette."""
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import OpenSearchSQL

        cassette = tmp_path / "run.jsonl"
        config = PipelineConfig(n_candidates=3)
        recorder = RecordingClient(SimulatedLLM(seed=4), cassette)
        recorded = OpenSearchSQL(tiny_benchmark, recorder, config)
        examples = tiny_benchmark.dev[:3]
        first = [recorded.answer(e).final_sql for e in examples]

        replayed = OpenSearchSQL(tiny_benchmark, ReplayClient(cassette), config)
        second = [replayed.answer(e).final_sql for e in examples]
        assert first == second
