"""Prompt template tests: every template contains what it claims to."""

from repro.llm.prompts import (
    column_selection_prompt,
    correction_prompt,
    cot_augment_prompt,
    entity_extraction_prompt,
    generation_prompt,
    select_alignment_prompt,
)

SCHEMA_TEXT = "Database: shop\n# Table: Customer\n  Customer.Name (TEXT)"


class TestExtractionPrompts:
    def test_entity_prompt_parts(self):
        prompt = entity_extraction_prompt("How many?", "evidence text", SCHEMA_TEXT)
        assert SCHEMA_TEXT in prompt
        assert "How many?" in prompt
        assert "evidence text" in prompt

    def test_entity_prompt_without_evidence(self):
        prompt = entity_extraction_prompt("How many?", "", SCHEMA_TEXT)
        assert "Evidence" not in prompt

    def test_column_prompt_asks_for_qualified_columns(self):
        prompt = column_selection_prompt("Q?", "", SCHEMA_TEXT)
        assert "table.column" in prompt


class TestGenerationPrompt:
    def test_structured_rules(self):
        prompt = generation_prompt("Q?", "", SCHEMA_TEXT, cot_mode="structured")
        for section in ("#reason:", "#columns:", "#values:", "#SELECT:",
                        "#SQL-like:", "#SQL:"):
            assert section in prompt

    def test_unstructured_rules(self):
        prompt = generation_prompt("Q?", "", SCHEMA_TEXT, cot_mode="unstructured")
        assert "step by step" in prompt
        assert "#SQL-like:" not in prompt

    def test_no_cot_rules(self):
        prompt = generation_prompt("Q?", "", SCHEMA_TEXT, cot_mode="none")
        assert "step by step" not in prompt
        assert "#SQL:" in prompt

    def test_values_section(self):
        prompt = generation_prompt(
            "Q?", "", SCHEMA_TEXT, values=("T.c = 'V'",)
        )
        assert "Similar values" in prompt
        assert "T.c = 'V'" in prompt

    def test_fewshots_included_in_order(self):
        prompt = generation_prompt(
            "Q?", "", SCHEMA_TEXT, few_shots=("SHOT-A", "SHOT-B")
        )
        assert prompt.index("SHOT-A") < prompt.index("SHOT-B")

    def test_select_hints(self):
        prompt = generation_prompt("Q?", "", SCHEMA_TEXT, select_hints=("h1",))
        assert "#select_hint: h1" in prompt

    def test_question_last(self):
        prompt = generation_prompt("THE-QUESTION?", "", SCHEMA_TEXT)
        assert prompt.rstrip().endswith("THE-QUESTION? */")


class TestCorrectionPrompt:
    def test_listing3_fields(self):
        prompt = correction_prompt(
            question="Q?",
            failed_sql="SELECT broken",
            error_kind="empty",
            error_message="Result: None",
            schema_text=SCHEMA_TEXT,
            values=("T.c = 'V'",),
            few_shots=("EXAMPLE",),
        )
        assert "#question: Q?" in prompt
        assert "#Error SQL: SELECT broken" in prompt
        assert "empty" in prompt
        assert "EXAMPLE" in prompt
        assert "T.c = 'V'" in prompt
        assert prompt.rstrip().endswith("#SQL:")


class TestOtherPrompts:
    def test_cot_augment_carries_pair(self):
        prompt = cot_augment_prompt("Q?", "SELECT 1", SCHEMA_TEXT)
        assert "Q?" in prompt
        assert "#SQL: SELECT 1" in prompt

    def test_select_alignment_lists_items(self):
        prompt = select_alignment_prompt("Q?", ["a", "b"])
        assert "- a" in prompt
        assert "- b" in prompt
