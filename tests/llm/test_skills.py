"""Skill profile tests: lookup, factors, profile ordering invariants."""

import pytest

from repro.llm.skills import GPT_4, GPT_4O, GPT_4O_MINI, skill_by_name


class TestLookup:
    def test_by_name(self):
        assert skill_by_name("gpt-4o") is GPT_4O
        assert skill_by_name("gpt-4o-mini") is GPT_4O_MINI
        assert skill_by_name("gpt-4") is GPT_4

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            skill_by_name("gpt-99")

    def test_unknown_error_lists_available_profiles(self):
        """The router's fast/heavy tiers resolve skills by name at
        construction; a typo must fail with the full menu, not a bare
        KeyError."""
        with pytest.raises(KeyError, match=r"unknown skill profile 'gpt-99'"):
            skill_by_name("gpt-99")
        with pytest.raises(KeyError, match=r"gpt-4o-mini"):
            skill_by_name("gpt-99")

    def test_lookup_is_case_and_whitespace_sensitive(self):
        # Names are exact identifiers, not fuzzy matches.
        for variant in ("GPT-4O", " gpt-4o", "gpt-4o ", ""):
            with pytest.raises(KeyError):
                skill_by_name(variant)


class TestFactors:
    def test_difficulty_scale_order(self):
        for profile in (GPT_4O, GPT_4, GPT_4O_MINI):
            assert (
                profile.difficulty_scale("simple")
                < profile.difficulty_scale("moderate")
                <= profile.difficulty_scale("challenging")
            )

    def test_unknown_difficulty_defaults_to_one(self):
        assert GPT_4O.difficulty_scale("weird") == 1.0

    def test_edge_difficulty_labels_default_to_one(self):
        """Examples with a blank or foreign difficulty label (e.g. from a
        hand-built benchmark) must behave as moderate-strength neutral,
        never crash or zero out the channel."""
        for profile in (GPT_4O, GPT_4, GPT_4O_MINI):
            for label in ("", "SIMPLE", "unknown", "extra hard"):
                assert profile.difficulty_scale(label) == 1.0

    def test_known_difficulty_scales_are_positive(self):
        for profile in (GPT_4O, GPT_4, GPT_4O_MINI):
            for label in ("simple", "moderate", "challenging"):
                assert profile.difficulty_scale(label) > 0.0

    def test_fewshot_factor_ordering(self):
        # CoT-form few-shot suppresses errors more than plain pairs.
        for profile in (GPT_4O, GPT_4, GPT_4O_MINI):
            assert (
                profile.fewshot_factor("query_cot_sql")
                < profile.fewshot_factor("query_sql")
                < profile.fewshot_factor("none")
            )

    def test_cot_factor_ordering(self):
        for profile in (GPT_4O, GPT_4, GPT_4O_MINI):
            assert (
                profile.cot_factor("structured")
                < profile.cot_factor("unstructured")
                < profile.cot_factor("none")
            )


class TestProfileOrdering:
    """GPT-4o must be at least as strong as GPT-4, both stronger than mini,
    on every channel (this is what makes Table 2 / Figure 4 come out)."""

    @pytest.mark.parametrize(
        "attr",
        [
            "column_confusion_per_distractor",
            "join_error_per_table",
            "agg_misuse_rate",
            "trick_miss_rate",
            "hard_fail_rate",
            "syntax_error_base",
            "entity_miss_rate",
        ],
    )
    def test_error_rates_ordered(self, attr):
        assert getattr(GPT_4O, attr) <= getattr(GPT_4, attr) <= getattr(
            GPT_4O_MINI, attr
        )

    @pytest.mark.parametrize(
        "attr", ["value_guess_rate", "value_follow_rate", "column_recall"]
    )
    def test_success_rates_ordered(self, attr):
        assert getattr(GPT_4O, attr) >= getattr(GPT_4, attr) >= getattr(
            GPT_4O_MINI, attr
        )

    def test_mini_trick_rate_can_lock_wrong_majorities(self):
        # The Figure 4 mechanism: on challenging questions mini's effective
        # per-candidate trick-miss probability crosses 0.5 without few-shot.
        p = GPT_4O_MINI.trick_miss_rate * GPT_4O_MINI.difficulty_scale("challenging")
        assert p > 0.5

    def test_correction_rates_are_probabilities(self):
        for profile in (GPT_4O, GPT_4, GPT_4O_MINI):
            for rate in profile.correction_fix_rate.values():
                assert 0.0 <= rate <= 1.0
