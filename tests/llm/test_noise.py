"""Noise operator tests: each hallucination channel's corruption."""

import numpy as np
import pytest

from repro.datasets.types import ValueMention
from repro.llm import noise
from repro.llm._noise_wrongcol import wrong_filter_column
from repro.schema.model import Column, Database, ForeignKey, Table
from repro.sqlkit.ast import FuncCall, Literal
from repro.sqlkit.parser import parse_select
from repro.sqlkit.sql_like import parse_sql_like, render_sql_like


def rng(seed=0):
    return np.random.default_rng(seed)


SCHEMA = Database(
    name="d",
    tables=(
        Table(
            "Patient",
            (
                Column("ID", "INTEGER", is_primary=True),
                Column("Name", "TEXT"),
                Column("City", "TEXT"),
                Column("Age", "INTEGER"),
            ),
        ),
        Table(
            "Lab",
            (
                Column("LabID", "INTEGER", is_primary=True),
                Column("ID", "INTEGER"),
                Column("Name", "TEXT"),
                Column("IGA", "REAL"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Lab", "ID", "Patient", "ID"),),
)


class TestCorruptValue:
    def test_stored_replaced_by_surface(self):
        statement = parse_sql_like("Show COUNT(*) WHERE Patient.Name = 'JOHN'")
        mention = ValueMention("John", "JOHN", "Patient", "Name")
        out = noise.corrupt_value(statement, mention)
        assert "'John'" in render_sql_like(out)

    def test_other_literals_untouched(self):
        statement = parse_sql_like(
            "Show COUNT(*) WHERE Patient.Name = 'JOHN' AND Patient.City = 'OSLO'"
        )
        mention = ValueMention("John", "JOHN", "Patient", "Name")
        out = noise.corrupt_value(statement, mention)
        assert "'OSLO'" in render_sql_like(out)

    def test_clean_mention_noop(self):
        statement = parse_sql_like("Show COUNT(*) WHERE Patient.Name = 'JOHN'")
        mention = ValueMention("JOHN", "JOHN", "Patient", "Name")
        assert noise.corrupt_value(statement, mention) == statement


class TestMisqualify:
    def test_same_name_column_swapped(self):
        statement = parse_sql_like("Show Patient.Name WHERE Patient.ID = 1")
        out = noise.misqualify_column(statement, SCHEMA, rng())
        assert out != statement
        text = render_sql_like(out)
        assert "Lab.Name" in text or "Lab.ID" in text

    def test_noop_without_distractors(self):
        statement = parse_sql_like("Show Patient.City")
        assert noise.misqualify_column(statement, SCHEMA, rng()) == statement

    def test_single_swap_only(self):
        statement = parse_sql_like("Show Patient.Name, Patient.ID")
        out = noise.misqualify_column(statement, SCHEMA, rng())
        changed = sum(
            a != b
            for a, b in zip(
                render_sql_like(statement).split(), render_sql_like(out).split()
            )
        )
        assert changed <= 1


class TestAggMisuse:
    def test_order_by_wrapped_in_max(self):
        statement = parse_sql_like("Show t.a ORDER BY t.score DESC LIMIT 1")
        out = noise.inject_agg_misuse(statement)
        assert "MAX(t.score)" in render_sql_like(out)

    def test_noop_with_group_by(self):
        statement = parse_sql_like("Show t.a GROUP BY t.a ORDER BY COUNT(*) DESC")
        assert noise.inject_agg_misuse(statement) == statement

    def test_noop_when_already_aggregate(self):
        statement = parse_sql_like("Show t.a ORDER BY MAX(t.b)")
        assert noise.inject_agg_misuse(statement) == statement

    def test_noop_without_order_by(self):
        statement = parse_sql_like("Show t.a")
        assert noise.inject_agg_misuse(statement) == statement


class TestBreakStyle:
    def test_guard_dropped(self):
        statement = parse_sql_like(
            "Show t.a WHERE t.b IS NOT NULL ORDER BY t.b ASC LIMIT 1"
        )
        for seed in range(8):
            out = noise.break_style(statement, rng(seed))
            if "IS NOT NULL" not in render_sql_like(out):
                return
        pytest.fail("guard never dropped in 8 seeds")

    def test_maxify_drift(self):
        statement = parse_sql_like(
            "Show t.a WHERE t.b IS NOT NULL ORDER BY t.b DESC LIMIT 1"
        )
        for seed in range(8):
            out = noise.break_style(statement, rng(seed))
            if "MAX(t.b)" in render_sql_like(out):
                assert out.limit is None
                assert not out.order_by
                return
        pytest.fail("maxify drift never produced in 8 seeds")

    def test_noop_without_style_surface(self):
        statement = parse_sql_like("Show COUNT(*) WHERE t.x = 1")
        assert noise.break_style(statement, rng()) == statement


class TestSelectShape:
    def test_multi_item_drop_or_reorder(self):
        statement = parse_sql_like("Show t.a, t.b WHERE t.x = 1")
        out = noise.break_select_shape(statement, rng(1))
        assert out != statement

    def test_superlative_gains_spurious_column(self):
        statement = parse_sql_like("Show t.a ORDER BY t.score DESC LIMIT 1")
        out = noise.break_select_shape(statement, rng(3))
        assert len(out.items) == 2


class TestTricks:
    def test_distinct_dropped_from_count(self):
        statement = parse_sql_like("Show COUNT(DISTINCT t.a)")
        out = noise.miss_trick(statement, "needs_distinct", rng())
        func = out.items[0].expr
        assert isinstance(func, FuncCall) and not func.distinct

    def test_select_distinct_dropped(self):
        statement = parse_sql_like("Show DISTINCT t.a")
        out = noise.miss_trick(statement, "needs_distinct", rng())
        assert not out.distinct

    def test_date_trick_year_function(self):
        statement = parse_sql_like(
            "Show COUNT(*) WHERE STRFTIME('%Y', t.d) >= '1990'"
        )
        seen = set()
        for seed in range(10):
            out = noise.miss_trick(statement, "date_format", rng(seed))
            text = render_sql_like(out)
            if "YEAR(" in text:
                seen.add("year")
            if ">= 1990" in text:
                seen.add("number")
        assert seen == {"year", "number"}

    def test_formula_bound_perturbed(self):
        statement = parse_sql_like("Show COUNT(*) WHERE t.x > 80 AND t.x < 500")
        out = noise.miss_trick(statement, "evidence_formula", rng(1))
        literals = {
            node.value
            for node in noise._walk_all(out)
            if isinstance(node, Literal) and node.kind == "number"
        }
        assert literals != {80, 500}

    def test_unknown_trait_noop(self):
        statement = parse_sql_like("Show COUNT(*)")
        assert noise.miss_trick(statement, "bogus", rng()) == statement


class TestSyntax:
    def test_corruption_changes_text(self):
        sql = "SELECT a FROM t WHERE x = 1"
        assert noise.corrupt_syntax(sql, rng(1)) != sql

    def test_corruption_breaks_parse(self):
        from repro.sqlkit.parser import ParseError, parse_select as p
        from repro.sqlkit.tokenizer import TokenizeError

        sql = "SELECT COUNT(a) FROM t WHERE x = 1"
        broken = noise.corrupt_syntax(sql, rng(0))
        with pytest.raises((ParseError, TokenizeError)):
            p(broken)


class TestCorruptJoin:
    def test_join_column_swapped(self):
        select = parse_select(
            "SELECT T1.Name FROM Patient AS T1 INNER JOIN Lab AS T2 ON T1.ID = T2.ID"
        )
        out = noise.corrupt_join(select, SCHEMA, rng(0))
        assert out != select
        condition = out.joins[0].condition
        assert condition.right.column != "ID"

    def test_noop_without_joins(self):
        select = parse_select("SELECT Name FROM Patient")
        assert noise.corrupt_join(select, SCHEMA, rng()) == select


class TestWrongFilterColumn:
    def test_filter_column_swapped(self):
        statement = parse_sql_like("Show COUNT(*) WHERE Patient.City = 'OSLO'")
        out = wrong_filter_column(statement, SCHEMA, rng(0))
        assert out != statement
        # Swapped to a same-table text column (Name is the only candidate).
        assert "Patient.Name" in render_sql_like(out)

    def test_type_compatibility_respected(self):
        statement = parse_sql_like("Show COUNT(*) WHERE Patient.Age > 10")
        out = wrong_filter_column(statement, SCHEMA, rng(0))
        # Age (integer) cannot swap to Name/City (text) and ID is primary.
        assert out == statement

    def test_noop_without_where(self):
        statement = parse_sql_like("Show COUNT(*)")
        assert wrong_filter_column(statement, SCHEMA, rng()) == statement
