"""Simulated LLM tests: determinism, feature-sensitivity of every channel,
task dispatch, correction behaviour.

These tests pin the causal contract in DESIGN.md: each prompt feature must
*reduce* the firing rate of its channel, measured over many questions.
"""

import pytest

from repro.datasets.types import Example, ValueMention
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O_MINI
from repro.llm.tasks import (
    ColumnSelectionTask,
    CorrectionTask,
    CoTAugmentTask,
    EntityExtractionTask,
    GenerationTask,
    PromptFeatures,
    SelectAlignmentTask,
)
from repro.schema.model import Column, Database, ForeignKey, Table

SCHEMA = Database(
    name="clinic",
    tables=(
        Table(
            "Patient",
            (
                Column("ID", "INTEGER", is_primary=True),
                Column("Name", "TEXT", value_examples=("JOHN", "MARY", "OMAR")),
                Column("City", "TEXT", value_examples=("OSLO", "LIMA")),
                Column("Score", "REAL"),
            ),
        ),
        Table(
            "Visit",
            (
                Column("VisitID", "INTEGER", is_primary=True),
                Column("ID", "INTEGER"),
                Column("Name", "TEXT"),
                Column("Date", "DATE"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Visit", "ID", "Patient", "ID"),),
)


def example(qid="q1", **kwargs):
    defaults = dict(
        question_id=qid,
        db_id="clinic",
        question="How many patients are called John?",
        gold_sql="SELECT COUNT(*) FROM Patient WHERE Patient.Name = 'JOHN'",
        difficulty="moderate",
        value_mentions=(ValueMention("John", "JOHN", "Patient", "Name"),),
        template_id="clinic:count",
    )
    defaults.update(kwargs)
    return Example(**defaults)


def features(**kwargs):
    defaults = dict(
        provided_values=(),
        schema_column_count=8,
        schema_table_count=2,
        fewshot_kind="none",
        cot_mode="structured",
    )
    defaults.update(kwargs)
    return PromptFeatures(**defaults)


def gen_task(ex, **feat):
    return GenerationTask(oracle=ex, schema=SCHEMA, features=features(**feat))


def extract_sql(text):
    for line in reversed(text.splitlines()):
        if line.startswith("#SQL:"):
            return line[len("#SQL:"):].strip()
    return text


def sql_of(llm, task, temperature=0.0, index=0):
    return extract_sql(llm._generate_one(task, temperature, index))


class TestDispatch:
    def test_requires_task(self):
        with pytest.raises(TypeError):
            SimulatedLLM().complete("hello")

    def test_generation_returns_n(self):
        llm = SimulatedLLM(seed=1)
        responses = llm.complete(
            "prompt", temperature=0.7, n=5, task=gen_task(example())
        )
        assert len(responses) == 5

    def test_prompt_tokens_charged_once(self):
        llm = SimulatedLLM()
        responses = llm.complete(
            "a prompt with several tokens", n=3, task=gen_task(example())
        )
        assert responses[0].usage.prompt_tokens > 0
        assert all(r.usage.prompt_tokens == 0 for r in responses[1:])

    def test_latency_reported(self):
        llm = SimulatedLLM()
        (response,) = llm.complete("p", task=gen_task(example()))
        assert response.latency_seconds > 0


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = SimulatedLLM(seed=5)
        b = SimulatedLLM(seed=5)
        task = gen_task(example())
        assert a._generate_one(task, 0.7, 3) == b._generate_one(task, 0.7, 3)

    def test_different_seed_can_differ(self):
        task = gen_task(example())
        outs = {
            SimulatedLLM(seed=s)._generate_one(task, 0.7, 0) for s in range(12)
        }
        assert len(outs) > 1

    def test_temperature_zero_candidates_identical(self):
        llm = SimulatedLLM(seed=2)
        task = gen_task(example())
        outs = {llm._generate_one(task, 0.0, i) for i in range(6)}
        assert len(outs) == 1

    def test_temperature_creates_candidate_variation(self):
        llm = SimulatedLLM(GPT_4O_MINI, seed=2)
        examples = [example(qid=f"q{i}") for i in range(30)]
        varied = 0
        for ex in examples:
            task = gen_task(ex)
            outs = {llm._generate_one(task, 0.7, i) for i in range(8)}
            varied += len(outs) > 1
        assert varied > 0


def channel_rate(llm, make_task, n_questions=300, wrong_test=None):
    """Fraction of questions whose candidate-0 SQL differs from gold."""
    wrong = 0
    for i in range(n_questions):
        ex = example(qid=f"q{i}")
        sql = sql_of(llm, make_task(ex), temperature=0.7)
        if sql != ex.gold_sql and (wrong_test is None or wrong_test(sql)):
            wrong += 1
    return wrong / n_questions


class TestValueChannel:
    def test_provided_values_suppress_value_errors(self):
        llm = SimulatedLLM(seed=0)

        def with_values(ex):
            return gen_task(ex, provided_values=("Patient.Name = 'JOHN'",))

        def without_values(ex):
            return gen_task(ex)

        rate_with = channel_rate(llm, with_values, wrong_test=lambda s: "'John'" in s)
        rate_without = channel_rate(
            llm, without_values, wrong_test=lambda s: "'John'" in s
        )
        assert rate_with < rate_without

    def test_value_confusion_suppressed_by_retrieval(self):
        llm = SimulatedLLM(seed=0)

        def confused(sql):
            return "'MARY'" in sql or "'OMAR'" in sql

        rate_without = channel_rate(llm, lambda ex: gen_task(ex), wrong_test=confused)
        rate_with = channel_rate(
            llm,
            lambda ex: gen_task(ex, provided_values=("Patient.Name = 'JOHN'",)),
            wrong_test=confused,
        )
        assert rate_with < rate_without


class TestFewshotAndCoT:
    def test_fewshot_reduces_trick_misses(self):
        llm = SimulatedLLM(seed=0)

        def make(fewshot_kind, templates=()):
            def f(ex):
                return gen_task(
                    ex, fewshot_kind=fewshot_kind, fewshot_template_ids=templates
                )
            return f

        def distinct_ex(qid):
            return example(
                qid=qid,
                gold_sql="SELECT COUNT(DISTINCT Patient.Name) FROM Patient",
                traits=("needs_distinct",),
                value_mentions=(),
            )

        def rate(kind, templates=()):
            wrong = 0
            for i in range(300):
                ex = distinct_ex(f"q{i}")
                sql = sql_of(llm, make(kind, templates)(ex), temperature=0.7)
                if "DISTINCT" not in sql:
                    wrong += 1
            return wrong / 300

        none = rate("none")
        plain = rate("query_sql", ("clinic:count",))
        cot = rate("query_cot_sql", ("clinic:count",))
        assert cot < plain < none

    def test_cot_mode_reduces_structural_errors(self):
        llm = SimulatedLLM(seed=0)

        def superlative(qid):
            return example(
                qid=qid,
                gold_sql=(
                    "SELECT Patient.Name FROM Patient WHERE Patient.Score IS NOT NULL "
                    "ORDER BY Patient.Score DESC LIMIT 1"
                ),
                value_mentions=(),
                traits=(),
            )

        def rate(mode):
            wrong = 0
            for i in range(300):
                ex = superlative(f"q{i}")
                sql = sql_of(llm, gen_task(ex, cot_mode=mode), temperature=0.7)
                if "MAX(" in sql:
                    wrong += 1
            return wrong / 300

        assert rate("structured") < rate("none")


class TestSchemaChannels:
    def test_bigger_schema_more_wrong_columns(self):
        llm = SimulatedLLM(seed=0)
        small = channel_rate(
            llm, lambda ex: gen_task(ex, schema_column_count=8), n_questions=400
        )
        big = channel_rate(
            llm, lambda ex: gen_task(ex, schema_column_count=40), n_questions=400
        )
        assert big > small

    def test_missing_table_falls_back_to_broken_sql(self):
        llm = SimulatedLLM(seed=0)
        pruned = SCHEMA.subset({"Visit": ["Name", "Date"]})
        ex = example()
        task = GenerationTask(oracle=ex, schema=pruned, features=features())
        sql = sql_of(llm, task)
        # Patient is gone: the model writes something ungrounded.
        assert "FROM Visit" in sql or "missing_table" in sql


class TestHardFail:
    def test_hard_fail_immune_to_features(self):
        """Questions the model hard-fails stay wrong regardless of prompt
        quality (the ceiling no module can lift)."""
        from repro.llm.simulated import hard_fail_scale
        from repro.sqlkit.parser import parse_select
        from repro.sqlkit.sql_like import select_to_sql_like

        llm = SimulatedLLM(seed=0)
        probe = example()
        scale = hard_fail_scale(
            probe, select_to_sql_like(parse_select(probe.gold_sql))
        )
        hard_ids = [
            f"q{i}"
            for i in range(400)
            if llm._uniform(f"q{i}", "hard_fail")
            < llm.skill.hard_fail_rate * scale * 0.88
        ]
        assert hard_ids, "expected some hard-fail questions"
        for qid in hard_ids[:10]:
            ex = example(qid=qid)
            rich = gen_task(
                ex,
                provided_values=("Patient.Name = 'JOHN'",),
                fewshot_kind="query_cot_sql",
                fewshot_template_ids=("clinic:count",),
                select_hints=True,
            )
            assert sql_of(llm, rich) != ex.gold_sql

    def test_hard_fail_consistent_across_candidates(self):
        llm = SimulatedLLM(seed=0)
        ex = example(qid="q7")  # arbitrary
        task = gen_task(ex)
        sqls = {sql_of(llm, task, temperature=0.7, index=i) for i in range(8)}
        gold_variants = {s for s in sqls if s == ex.gold_sql}
        # Either always gold-ish or the hard-fail variant is stable: no more
        # than a handful of distinct outputs driven by per-candidate noise.
        assert len(sqls) <= 4


class TestOtherTasks:
    def test_cot_augment_sections(self):
        llm = SimulatedLLM()
        (response,) = llm.complete(
            "p", task=CoTAugmentTask(example=example(), schema=SCHEMA)
        )
        for section in ("#reason:", "#columns:", "#SELECT:", "#SQL-like:", "#SQL:"):
            assert section in response.text

    def test_entity_extraction_contains_surface(self):
        llm = SimulatedLLM(seed=1)
        found = 0
        for i in range(50):
            (response,) = llm.complete(
                "p", task=EntityExtractionTask(example=example(f"q{i}"), schema=SCHEMA)
            )
            if "John" in response.text:
                found += 1
        assert found > 40  # entity_miss_rate is small

    def test_column_selection_returns_qualified(self):
        llm = SimulatedLLM(seed=1)
        (response,) = llm.complete(
            "p", task=ColumnSelectionTask(example=example(), schema=SCHEMA)
        )
        lines = response.text.splitlines()
        assert any("." in line for line in lines)

    def test_select_alignment_matches_item_count(self):
        llm = SimulatedLLM()
        ex = example(
            gold_sql="SELECT Patient.Name, Patient.City FROM Patient",
            value_mentions=(),
        )
        (response,) = llm.complete(
            "p", task=SelectAlignmentTask(oracle=ex, schema=SCHEMA)
        )
        assert len(response.text.splitlines()) == 2


class TestCorrection:
    def make_correction(self, failed_sql, error_kind, provided=(), fewshot="query_sql"):
        ex = example()
        return CorrectionTask(
            oracle=ex,
            schema=SCHEMA,
            features=features(provided_values=provided, fewshot_kind=fewshot),
            failed_sql=failed_sql,
            error_kind=error_kind,
        )

    def test_unparseable_sql_returned_as_is(self):
        llm = SimulatedLLM()
        task = self.make_correction("SELECT SELECT broken", "syntax_error")
        (response,) = llm.complete("p", task=task)
        assert "SELECT SELECT broken" in response.text

    def test_syntax_cache_repair(self):
        llm = SimulatedLLM(seed=0)
        clean = "SELECT COUNT(*) FROM Patient"
        broken = clean + " WHERE"
        llm._syntax_cache[broken] = clean
        fixed = 0
        for i in range(50):
            task = self.make_correction(broken, "syntax_error")
            task = CorrectionTask(
                oracle=example(f"q{i}"),
                schema=SCHEMA,
                features=features(fewshot_kind="query_sql"),
                failed_sql=broken,
                error_kind="syntax_error",
            )
            (response,) = llm.complete("p", task=task)
            if clean in response.text and "WHERE" not in response.text:
                fixed += 1
        assert fixed > 25  # fix rate is 0.80

    def test_empty_repair_uses_provided_values(self):
        llm = SimulatedLLM(seed=0)
        failed = "SELECT COUNT(*) FROM Patient WHERE Patient.Name = 'John'"
        with_values = without_values = 0
        for i in range(120):
            for provided, counter in (
                (("Patient.Name = 'JOHN'",), "with"),
                ((), "without"),
            ):
                task = CorrectionTask(
                    oracle=example(f"q{i}"),
                    schema=SCHEMA,
                    features=features(
                        provided_values=provided, fewshot_kind="query_sql"
                    ),
                    failed_sql=failed,
                    error_kind="empty",
                )
                (response,) = llm.complete("p", task=task)
                if "'JOHN'" in response.text:
                    if counter == "with":
                        with_values += 1
                    else:
                        without_values += 1
        assert with_values > without_values

    def test_year_function_repaired(self):
        llm = SimulatedLLM(seed=0)
        failed = "SELECT COUNT(*) FROM Visit WHERE YEAR(Visit.Date) >= 1990"
        repaired = 0
        for i in range(80):
            task = CorrectionTask(
                oracle=example(
                    f"q{i}",
                    gold_sql=(
                        "SELECT COUNT(*) FROM Visit "
                        "WHERE STRFTIME('%Y', Visit.Date) >= '1990'"
                    ),
                    value_mentions=(),
                ),
                schema=SCHEMA,
                features=features(fewshot_kind="query_sql"),
                failed_sql=failed,
                error_kind="other_error",
            )
            (response,) = llm.complete("p", task=task)
            if "STRFTIME" in response.text.upper():
                repaired += 1
        assert repaired > 20
