"""Unified metrics registry: instruments, labels, collectors, exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observability import Counter, Gauge, Histogram, MetricsRegistry, flatten


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("c", labelnames=("status",))
        counter.labels(status="ok").inc()
        counter.labels(status="ok").inc()
        counter.labels(status="failed").inc()
        assert dict(counter.samples()) == {("failed",): 1.0, ("ok",): 2.0}

    def test_unlabelled_access_on_labelled_metric_rejected(self):
        counter = Counter("c", labelnames=("status",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        counter = Counter("c", labelnames=("status",))
        with pytest.raises(ValueError):
            counter.labels(tier="l1")


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_observe_buckets_cumulative(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            histogram.observe(value)
        sample = histogram.labels().value()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(104.2)
        assert sample["buckets"] == {"1.0": 2, "5.0": 3, "+Inf": 4}

    def test_buckets_sorted_and_required(self):
        histogram = Histogram("h", buckets=(5.0, 1.0))
        assert histogram.buckets == (1.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestFlatten:
    def test_nested_dict_flattens_sorted(self):
        flat = flatten({"b": {"y": 2, "x": 1}, "a": 0})
        assert list(flat) == ["a", "b.x", "b.y"]

    def test_lists_skipped_scalars_kept(self):
        flat = flatten({"faults": [1, 2, 3], "state": "closed", "ok": True})
        assert "faults" not in flat
        assert flat["state"] == "closed"
        assert flat["ok"] is True


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total")
        b = registry.counter("repro_x_total")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_snapshot_deterministic_order(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("repro_b_total").inc()
            registry.gauge("repro_a").set(2)
            c = registry.counter("repro_c_total", labelnames=("status",))
            c.labels(status="ok").inc()
            c.labels(status="failed").inc(2)
            registry.register_collector("z", lambda: {"n": 1})
            registry.register_collector("a", lambda: {"m": {"k": 2}})
            return registry.to_json()

        assert build() == build()
        payload = json.loads(build())
        assert list(payload["metrics"]) == sorted(payload["metrics"])
        assert list(payload["collected"]) == ["a", "z"]

    def test_collectors_pull_live_state(self):
        registry = MetricsRegistry()
        state = {"hits": 0}
        registry.register_collector("cache", lambda: dict(state))
        assert registry.snapshot()["collected"]["cache"] == {"hits": 0}
        state["hits"] = 7
        assert registry.snapshot()["collected"]["cache"] == {"hits": 7}

    def test_jsonl_one_sample_per_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(3)
        registry.register_collector("s", lambda: {"a": 1})
        lines = [json.loads(line) for line in registry.to_jsonl().splitlines()]
        assert {line["metric"] for line in lines} == {"repro_x_total", "s.a"}
        for line in lines:
            assert set(line) == {"metric", "type", "labels", "value"}

    def test_render_human_readable(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_req_total", labelnames=("status",))
        counter.labels(status="ok").inc()
        registry.histogram("repro_secs").observe(1.0)
        text = registry.render()
        assert "repro_req_total{status=ok} 1.0" in text
        assert "repro_secs count=1" in text

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_n_total", labelnames=("worker",))
        histogram = registry.histogram("repro_v")

        def work(worker: int):
            for _ in range(500):
                counter.labels(worker=worker % 2).inc()
                histogram.observe(0.5)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(value for _key, value in counter.samples())
        assert total == 2000
        assert histogram.labels().value()["count"] == 2000
