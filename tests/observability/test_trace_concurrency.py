"""Span trees under concurrency, deadlines and fault injection.

The ISSUE acceptance test: a 4-worker ``evaluate_pipeline`` run where every
request's span tree is complete, non-interleaved (each tree holds only its
own request's spans) and deterministic across reruns; and traces survive
deadline-degraded and fault-injected requests with the degradation event
attached to the right span.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.evaluation import evaluate_pipeline
from repro.execution.chaos import DbFaultPlan, FaultInjectingExecutor
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.observability import Trace
from repro.reliability.stats import ReliabilityStats

REQUEST_ATTRS = {"question_id", "db_id"}


def fresh_pipeline(benchmark, **config_kw):
    return OpenSearchSQL(
        benchmark,
        SimulatedLLM(GPT_4O, seed=0),
        PipelineConfig(n_candidates=3, **config_kw),
    )


def assert_tree_complete(trace: Trace) -> None:
    top = [child.name for child in trace.root.children]
    assert top == ["preprocessing", "extraction", "generation", "refinement"]
    refinement = trace.root.children[-1]
    assert [c.name for c in refinement.children] == ["alignment", "execution"]


class TestFourWorkerTraces:
    @pytest.fixture(scope="class")
    def reports(self, tiny_benchmark):
        examples = tiny_benchmark.dev
        runs = []
        for _ in range(2):
            pipeline = fresh_pipeline(tiny_benchmark)
            runs.append(evaluate_pipeline(pipeline, examples, workers=4, tracing=True))
        return examples, runs

    def test_every_request_has_a_complete_tree(self, reports):
        examples, (report, _again) = reports
        assert len(report.traces) == len(examples)
        for example in examples:
            trace = report.traces[example.question_id]
            assert trace is not None
            assert_tree_complete(trace)

    def test_trees_are_not_interleaved(self, reports):
        """A trace only carries its own request's identity and spans: no
        span or event leaked in from a concurrently-running request."""
        examples, (report, _again) = reports
        expected_ids = {e.question_id for e in examples}
        for example in examples:
            trace = report.traces[example.question_id]
            assert trace.question_id == example.question_id
            assert trace.root.attributes["question_id"] == example.question_id
            span_ids = [span.span_id for span in trace.spans()]
            # span ids are per-trace counters: contiguous from 1 proves no
            # foreign span was registered into this tree
            assert span_ids == list(range(1, len(span_ids) + 1))
            for span in trace.spans():
                assert span is trace.root or span.parent_id in span_ids
        assert {t.question_id for t in report.traces.values()} == expected_ids

    def test_structures_deterministic_across_reruns(self, reports):
        examples, (first, second) = reports
        for example in examples:
            a = first.traces[example.question_id]
            b = second.traces[example.question_id]
            assert a.structure() == b.structure(), example.question_id

    def test_costs_conserved_per_request(self, reports):
        examples, (report, _again) = reports
        for example in examples:
            trace = report.traces[example.question_id]
            costs = trace.stage_costs()
            assert sum(v["tokens"] for v in costs.values()) == trace.root.tokens
            assert sum(v["model_seconds"] for v in costs.values()) == pytest.approx(
                trace.root.model_seconds, abs=1e-6
            )

    def test_aggregate_tokens_match_report_cost(self, reports):
        examples, (report, _again) = reports
        traced = sum(t.root.tokens for t in report.traces.values())
        assert traced == report.cost.total_tokens


class TestDegradedTraces:
    def test_deadline_degradation_lands_on_its_stage_span(self, tiny_benchmark):
        """A deadline tight enough to truncate refinement still yields a
        complete tree, with the degradation event on the refinement span."""
        pipeline = fresh_pipeline(tiny_benchmark)
        report = evaluate_pipeline(
            pipeline,
            tiny_benchmark.dev,
            workers=4,
            deadline_ms=1,
            tracing=True,
        )
        assert report.degradations, "1ms deadline should degrade something"
        degraded = [
            trace
            for trace in report.traces.values()
            if trace.root.status == "degraded"
        ]
        assert degraded
        for trace in degraded:
            # the stage skeleton survives even when the deadline stopped
            # the refiner before it could open its alignment/execution
            # children
            top = [child.name for child in trace.root.children]
            assert top == ["preprocessing", "extraction", "generation", "refinement"]
            events = {
                span.name: [e for e in span.events if e.name == "degradation"]
                for span in trace.spans()
            }
            hits = {name: evs for name, evs in events.items() if evs}
            assert hits, "degraded trace carries no degradation event"
            for name, evs in hits.items():
                assert name != "request", (
                    "degradation should attach to a stage span, not the root"
                )
                assert trace.find(name).status == "degraded"
                for event in evs:
                    assert event.attributes["kind"]

    def test_fault_injected_traces_survive(self, tiny_benchmark):
        """Database chaos doesn't break the span tree; injected faults
        surface as db_fault events on the execution span.  Serial run:
        the executor fault stream is schedule-independent but the LLM
        fault injector is not, so chaos stays on the DB side here."""
        pipeline = fresh_pipeline(tiny_benchmark)
        fault_stats = ReliabilityStats()
        plan = DbFaultPlan(locked=0.3, slow_query=0.3)
        pipeline.set_executor_wrapper(
            lambda executor, db_id: FaultInjectingExecutor(
                executor, plan, seed=11, stats=fault_stats
            )
        )
        report = evaluate_pipeline(
            pipeline, tiny_benchmark.dev, workers=1, tracing=True
        )
        assert fault_stats.failures > 0, "chaos plan injected nothing"
        fault_events = [
            (trace, span, event)
            for trace in report.traces.values()
            for span in trace.spans()
            for event in span.events
            if event.name == "db_fault"
        ]
        assert fault_events, "no db_fault events on any span"
        for trace, span, event in fault_events:
            # alignment's DB probes run through the same wrapped executor,
            # so faults can land on either child of refinement
            assert span.name in {"execution", "alignment"}
            assert event.attributes["kind"] in {"db_locked", "db_slow_query"}
        for trace in report.traces.values():
            assert_tree_complete(trace)
