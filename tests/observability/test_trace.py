"""Trace/Span unit behaviour plus the end-to-end single-request contract:
a served request yields a complete span tree whose per-stage costs sum to
the request totals the serving stats report."""

from __future__ import annotations

import json

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.observability import (
    STAGE_SPANS,
    Span,
    Trace,
    add_event,
    current_span,
    use_span,
)
from repro.reliability import FaultInjectingLLM, FaultPlan, ResilientLLM
from repro.serving import ServingEngine


class TestSpan:
    def test_child_nesting_and_walk(self):
        trace = Trace("q1", "db1")
        a = trace.root.child("a")
        b = a.child("b")
        assert [s.name for s in trace.spans()] == ["request", "a", "b"]
        assert b.parent_id == a.span_id
        assert trace.find("b") is b

    def test_events_and_attributes(self):
        trace = Trace()
        span = trace.root.child("stage")
        span.event("cache", outcome="hit")
        span.set("width", 5)
        payload = span.to_dict()
        assert payload["events"] == [{"name": "cache", "outcome": "hit"}]
        assert payload["attributes"] == {"width": 5}

    def test_finish_stamps_wall_once(self):
        trace = Trace()
        span = trace.root.child("stage")
        span.finish()
        first = span.wall_seconds
        span.finish()
        assert span.wall_seconds == first

    def test_charge_accumulates(self):
        trace = Trace()
        span = trace.root.child("execution")
        span.charge(0.5)
        span.charge(0.25)
        assert span.charged_seconds == pytest.approx(0.75)

    def test_structure_excludes_wall_clock(self):
        def build():
            trace = Trace("q", "db")
            span = trace.root.child("stage")
            span.event("e", detail="x")
            span.tokens = 7
            span.finish()
            trace.finish()
            return trace

        assert build().structure() == build().structure()

    def test_format_renders_tree(self):
        trace = Trace("q7", "db")
        child = trace.root.child("extraction")
        child.cache = "hit"
        text = trace.format()
        assert "trace q7" in text
        assert "extraction" in text
        assert "[cache hit]" in text


class TestAmbientContext:
    def test_add_event_without_span_is_noop(self):
        assert add_event("orphan") is False

    def test_use_span_publishes_and_restores(self):
        trace = Trace()
        span = trace.root.child("stage")
        assert current_span() is None
        with use_span(span):
            assert current_span() is span
            assert add_event("seen") is True
        assert current_span() is None
        assert [e.name for e in span.events] == ["seen"]

    def test_use_span_none_clears(self):
        trace = Trace()
        outer = trace.root.child("outer")
        with use_span(outer):
            with use_span(None):
                assert current_span() is None
            assert current_span() is outer


class TestStageDeltas:
    def test_stage_attributes_cost_delta(self):
        class FakeCost:
            total_tokens = 0
            total_model_seconds = 0.0

        cost = FakeCost()
        trace = Trace()
        with trace.stage("generation", cost=cost) as span:
            cost.total_tokens = 120
            cost.total_model_seconds = 1.5
        assert span.tokens == 120
        assert span.model_seconds == pytest.approx(1.5)
        with trace.stage("refinement", cost=cost) as span2:
            cost.total_tokens = 150
        assert span2.tokens == 30
        total = sum(c.tokens for c in trace.root.children)
        assert total == cost.total_tokens


@pytest.fixture(scope="module")
def traced_engine_run(tiny_benchmark):
    pipeline = OpenSearchSQL(
        tiny_benchmark,
        SimulatedLLM(GPT_4O, seed=0),
        PipelineConfig(n_candidates=3),
    )
    examples = tiny_benchmark.dev[:3]
    with ServingEngine(
        pipeline, workers=1, tracing=True, deadline_seconds=120.0
    ) as engine:
        results, traces = [], []
        for example in examples:
            results.append(engine.answer(example))
            traces.append(engine.last_trace())
        first = traces[0]
        # repeat the first request: must be a result-cache hit, and its
        # trace replaces the stored one for that question id (latest wins)
        cached_result = engine.answer(examples[0])
        stats = engine.stats()
        last = engine.last_trace()
        assert engine.trace_for(examples[0].question_id) is last
    return {
        "examples": examples,
        "results": results,
        "cached_result": cached_result,
        "stats": stats,
        "traces": traces,
        "first": first,
        "last": last,
    }


class TestServedRequestTrace:
    def test_span_tree_is_complete(self, traced_engine_run):
        trace = traced_engine_run["first"]
        assert trace.root.name == "request"
        for name in STAGE_SPANS:
            assert trace.find(name) is not None, f"missing span {name}"
        # the five stages hang off the root; execution under refinement
        top = [child.name for child in trace.root.children]
        assert top == ["preprocessing", "extraction", "generation", "refinement"]
        refinement = trace.find("refinement")
        assert [c.name for c in refinement.children] == ["alignment", "execution"]

    def test_cache_events_attached(self, traced_engine_run):
        trace = traced_engine_run["first"]
        assert trace.root.cache == "miss"
        assert [e.name for e in trace.root.events] == ["result_cache"]
        extraction = trace.find("extraction")
        assert extraction.cache == "miss"
        generation = trace.find("generation")
        assert "fewshot_cache" in [e.name for e in generation.events]

    def test_execution_events_recorded(self, traced_engine_run):
        execution = traced_engine_run["first"].find("execution")
        events = [e for e in execution.events if e.name == "execute"]
        assert events, "no execute events on the execution span"
        for event in events:
            assert "status" in event.attributes
            assert "elapsed_seconds" in event.attributes

    def test_result_cache_hit_trace(self, traced_engine_run):
        last = traced_engine_run["last"]
        assert last.root.cache == "hit"
        assert last.root.tokens == 0
        assert last.root.children == []

    def test_stage_costs_sum_to_request_totals(self, traced_engine_run):
        """Conservation: span costs sum exactly to the request totals the
        serving stats record (tokens and model seconds)."""
        for trace, result in zip(
            traced_engine_run["traces"], traced_engine_run["results"]
        ):
            costs = trace.stage_costs()
            assert sum(v["tokens"] for v in costs.values()) == result.cost.total_tokens
            assert sum(v["model_seconds"] for v in costs.values()) == pytest.approx(
                result.cost.total_model_seconds, abs=1e-6
            )
            assert trace.root.tokens == result.cost.total_tokens

    def test_trace_model_seconds_match_serving_stats(self, traced_engine_run):
        """The sum of traced per-request model seconds equals the serving
        layer's aggregate accounting (cached requests charge zero)."""
        stats = traced_engine_run["stats"]
        traced_total = sum(t.root.model_seconds for t in traced_engine_run["traces"])
        recorded_total = sum(
            r.cost.total_model_seconds for r in traced_engine_run["results"]
        )
        assert traced_total == pytest.approx(recorded_total, abs=1e-6)
        assert stats.completed == 4  # 3 fresh + 1 cached
        assert stats.result_hits == 1

    def test_deadline_remaining_recorded(self, traced_engine_run):
        trace = traced_engine_run["first"]
        assert trace.root.deadline_remaining_seconds is not None
        assert 0 <= trace.root.deadline_remaining_seconds <= 120.0

    def test_json_export_round_trips(self, traced_engine_run):
        trace = traced_engine_run["first"]
        payload = json.loads(trace.to_json())
        assert payload["question_id"] == trace.question_id
        assert payload["spans"]["name"] == "request"
        names = {c["name"] for c in payload["spans"]["children"]}
        assert {"preprocessing", "extraction", "generation", "refinement"} <= names


class TestTracedTransportFaults:
    def test_retry_events_attach_to_stage_span(self, tiny_benchmark):
        pipeline = OpenSearchSQL(
            tiny_benchmark,
            SimulatedLLM(GPT_4O, seed=0),
            PipelineConfig(n_candidates=3),
        )
        injector = FaultInjectingLLM(
            SimulatedLLM(GPT_4O, seed=0), FaultPlan.transient(0.5), seed=7
        )
        resilient = ResilientLLM(injector, seed=7)
        pipeline.rebind_llm(resilient)
        trace = Trace("q", "db")
        pipeline.answer(tiny_benchmark.dev[0], trace=trace)
        event_names = [event.name for span in trace.spans() for event in span.events]
        assert injector.stats.failures > 0
        assert "llm_fault_injected" in event_names
        if resilient.stats.retries:
            assert "llm_retry" in event_names

    def test_traced_tokens_match_reliability_stats(self, tiny_benchmark):
        pipeline = OpenSearchSQL(
            tiny_benchmark,
            SimulatedLLM(GPT_4O, seed=0),
            PipelineConfig(n_candidates=3),
        )
        resilient = ResilientLLM(SimulatedLLM(GPT_4O, seed=0), seed=0)
        pipeline.rebind_llm(resilient)
        trace = Trace("q", "db")
        pipeline.answer(tiny_benchmark.dev[0], trace=trace)
        assert trace.root.tokens == resilient.stats.tokens_spent
