"""TieredPipeline: route → answer → escalate, determinism, cache keys."""

import pytest

from repro.caching import result_cache_key
from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability.deadline import Deadline
from repro.routing import RoutingConfig, RoutingInfo, TierAttempt, TieredPipeline
from repro.routing.router import Tier


def _base(tiny_benchmark, n_candidates=5):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=n_candidates))


@pytest.fixture(scope="module")
def tiered(tiny_benchmark):
    return TieredPipeline(_base(tiny_benchmark))


class TestPipelineSurface:
    def test_delegates_the_opensearchsql_surface(self, tiered):
        base = tiered.base
        assert tiered.benchmark is base.benchmark
        assert tiered.llm is base.llm
        assert tiered.config is base.config
        assert tiered.databases is base.databases
        assert tiered.executor("healthcare") is base.executor("healthcare")

    def test_stage_assignment_lands_on_the_base(self, tiered):
        # The serving engine installs cache wrappers by assignment; every
        # tier must see them through the base.
        original_extractor = tiered.extractor
        original_library = tiered.library
        sentinel_extractor, sentinel_library = object(), object()
        tiered.extractor = sentinel_extractor
        tiered.library = sentinel_library
        try:
            assert tiered.base.extractor is sentinel_extractor
            # The fast path and the heavy sibling read the library through
            # the base dynamically, so the wrapper reaches every tier.
            assert tiered.base.library is sentinel_library
            assert tiered.heavy_pipeline.library is sentinel_library
        finally:
            tiered.extractor = original_extractor
            tiered.library = original_library


class TestRoutingSurface:
    def test_tier_mix_covers_the_workload(self, tiered, tiny_benchmark):
        mix = tiered.tier_mix(tiny_benchmark.dev)
        assert sum(mix.values()) == len(tiny_benchmark.dev)
        assert set(mix) == {"fast", "full", "heavy"}

    def test_route_tier_is_stable(self, tiered, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        assert tiered.route_tier(example) == tiered.route_tier(example)


class TestAnswer:
    def test_result_carries_routing_info(self, tiered, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        result = tiered.answer(example)
        routing = result.routing
        assert isinstance(routing, RoutingInfo)
        assert routing.initial_tier == tiered.route_tier(example)
        assert routing.attempts, "every answer records at least one attempt"
        assert routing.attempts[0].tier == routing.initial_tier
        assert result.final_sql

    def test_escalation_chain_is_recorded(self, tiny_benchmark):
        """Forcing every request FAST exercises the ladder: any answer the
        policy distrusts must climb exactly one recorded step at a time."""
        tiered = TieredPipeline(
            _base(tiny_benchmark), RoutingConfig(fast_max=2.0)
        )
        events = 0
        for example in tiny_benchmark.dev:
            result = tiered.answer(example)
            routing = result.routing
            assert routing.initial_tier == "fast"
            for index, event in enumerate(routing.escalations):
                assert event.from_tier == routing.attempts[index].tier
                assert routing.attempts[index].escalated
                assert event.tokens_spent == routing.attempts[index].tokens
            if routing.escalations:
                assert len(routing.attempts) == len(routing.escalations) + 1
            events += len(routing.escalations)
        stats = tiered.routing_stats()
        assert stats["requests"] == len(tiny_benchmark.dev)
        assert stats["decisions"] == {"fast": len(tiny_benchmark.dev)}
        assert sum(stats["escalations"].values()) == events

    def test_identical_twins_answer_identically(self, tiny_benchmark):
        """Two independently-built tiered pipelines replay to the same
        SQLs, tiers and escalations — the journal-replay property."""
        a = TieredPipeline(_base(tiny_benchmark))
        b = TieredPipeline(_base(tiny_benchmark))
        for example in tiny_benchmark.dev[:6]:
            ra, rb = a.answer(example), b.answer(example)
            assert ra.final_sql == rb.final_sql
            assert ra.routing.to_dict() == rb.routing.to_dict()
            assert ra.cost.total_tokens == rb.cost.total_tokens

    def test_expired_deadline_suppresses_escalation(self, tiny_benchmark):
        tiered = TieredPipeline(
            _base(tiny_benchmark), RoutingConfig(fast_max=2.0)
        )
        for example in tiny_benchmark.dev[:4]:
            deadline = Deadline(1e-9)
            result = tiered.answer(example, deadline=deadline)
            # The ladder may not climb on a spent budget: one attempt only.
            assert result.routing.escalations == []
            assert len(result.routing.attempts) == 1
            assert result.final_sql

    def test_traced_answer_carries_tier_spans(self, tiered, tiny_benchmark):
        from repro.observability.trace import Trace

        example = tiny_benchmark.dev[0]
        trace = Trace(question_id=example.question_id, db_id=example.db_id)
        result = tiered.answer(example, trace=trace)
        names = [span.name for span in trace.spans()]
        assert f"tier:{result.routing.attempts[0].tier}" in names
        route_span = trace.find("routing")
        assert route_span is not None
        assert route_span.attributes["tier"] == result.routing.initial_tier


class TestCacheKeys:
    def test_unrouted_key_is_the_two_tuple(self, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        base = _base(tiny_benchmark)
        key = result_cache_key(example, base)
        assert key == (example.db_id, " ".join(example.question.split()).rstrip(" ?.!").lower())

    def test_routed_key_appends_the_tier(self, tiered, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        key = result_cache_key(example, tiered)
        assert len(key) == 3
        assert key[0] == example.db_id
        assert key[2] in {"fast", "full", "heavy"}
        assert key[2] == tiered.route_tier(example)
        # db_id stays the key prefix so invalidate_db keeps matching.
        assert key[:2] == result_cache_key(example, tiered.base)


class TestRoundTrips:
    def test_tier_attempt_dict_round_trip(self):
        attempt = TierAttempt(tier="fast", tokens=812, model_seconds=0.41,
                              escalated=True)
        assert TierAttempt.from_dict(attempt.to_dict()) == attempt

    def test_routing_info_dict_round_trip(self, tiered, tiny_benchmark):
        routing = tiered.answer(tiny_benchmark.dev[1]).routing
        restored = RoutingInfo.from_dict(routing.to_dict())
        assert restored.to_dict() == routing.to_dict()
        assert restored.escalated == routing.escalated

    def test_unused_heavy_tier_stays_unbuilt(self, tiny_benchmark):
        tiered = TieredPipeline(
            _base(tiny_benchmark), RoutingConfig(fast_max=-1.0, heavy_min=2.0)
        )
        tiered.answer(tiny_benchmark.dev[0])
        assert tiered._heavy is None

    def test_forced_heavy_prefers_the_stronger_vote(self, tiny_benchmark):
        tiered = TieredPipeline(
            _base(tiny_benchmark), RoutingConfig(fast_max=-1.0, heavy_min=0.0)
        )
        result = tiered.answer(tiny_benchmark.dev[0])
        assert result.routing.initial_tier == "heavy"
        assert result.routing.final_tier == "heavy"
        assert Tier(result.routing.final_tier) is Tier.HEAVY
