"""DifficultyRouter: deterministic scoring, tier thresholds, memoization."""

import pytest

from repro.routing import (
    DifficultyRouter,
    RouteDecision,
    RouteFeatures,
    RoutingConfig,
    Tier,
)


class TestTierLadder:
    def test_values_are_the_wire_names(self):
        assert Tier.FAST.value == "fast"
        assert Tier.FULL.value == "full"
        assert Tier.HEAVY.value == "heavy"

    def test_next_tier_climbs_and_tops_out(self):
        assert Tier.FAST.next_tier is Tier.FULL
        assert Tier.FULL.next_tier is Tier.HEAVY
        assert Tier.HEAVY.next_tier is None


class TestRoutingConfig:
    def test_dict_round_trip(self):
        config = RoutingConfig(fast_max=0.25, seed=7)
        assert RoutingConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        payload = RoutingConfig().to_dict()
        payload["future_knob"] = True
        assert RoutingConfig.from_dict(payload) == RoutingConfig()

    def test_frozen(self):
        with pytest.raises(Exception):
            RoutingConfig().fast_max = 0.5


class TestRouteFeatures:
    def test_dict_round_trip(self):
        features = RouteFeatures(
            question_words=9,
            cue_hits=2,
            table_count=3,
            column_count=24,
            neighbor_difficulty=0.75,
            has_evidence=True,
            dirty_values=1,
        )
        assert RouteFeatures.from_dict(features.to_dict()) == features


@pytest.fixture(scope="module")
def router(tiny_pipeline):
    return DifficultyRouter(
        lambda: tiny_pipeline.library, RoutingConfig(), seed=0
    )


def _pre(pipeline, example):
    return pipeline.preprocessed(example.db_id)


class TestRouting:
    def test_decision_shape(self, router, tiny_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        decision = router.route(example, _pre(tiny_pipeline, example))
        assert isinstance(decision, RouteDecision)
        assert decision.tier in Tier
        assert 0.0 <= decision.score <= 1.1
        assert decision.features.question_words > 0
        assert decision.features.table_count > 0

    def test_same_seed_routers_agree_everywhere(self, tiny_pipeline, tiny_benchmark):
        """Two independently-built routers (same seed) make identical
        decisions — the property cluster shards and journal replay rely on."""
        a = DifficultyRouter(lambda: tiny_pipeline.library, RoutingConfig(), seed=0)
        b = DifficultyRouter(lambda: tiny_pipeline.library, RoutingConfig(), seed=0)
        for example in tiny_benchmark.dev:
            pre = _pre(tiny_pipeline, example)
            da, db = a.route(example, pre), b.route(example, pre)
            assert (da.tier, da.score) == (db.tier, db.score), example.question_id

    def test_route_is_pure_and_memoized(self, router, tiny_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        pre = _pre(tiny_pipeline, example)
        first = router.route(example, pre)
        again = router.route(example, pre)
        assert again is first  # memo hit returns the cached decision

    def test_thresholds_partition_the_score_line(self, tiny_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        pre = _pre(tiny_pipeline, example)
        all_fast = DifficultyRouter(
            lambda: tiny_pipeline.library, RoutingConfig(fast_max=2.0), seed=0
        )
        assert all_fast.route(example, pre).tier is Tier.FAST
        all_heavy = DifficultyRouter(
            lambda: tiny_pipeline.library,
            RoutingConfig(fast_max=-1.0, heavy_min=0.0),
            seed=0,
        )
        assert all_heavy.route(example, pre).tier is Tier.HEAVY
        all_full = DifficultyRouter(
            lambda: tiny_pipeline.library,
            RoutingConfig(fast_max=-1.0, heavy_min=2.0),
            seed=0,
        )
        assert all_full.route(example, pre).tier is Tier.FULL

    def test_config_seed_overrides_constructor_seed(self, tiny_pipeline):
        router = DifficultyRouter(
            lambda: tiny_pipeline.library, RoutingConfig(seed=9), seed=0
        )
        assert router.seed == 9

    def test_missing_library_defaults_to_neutral(self, tiny_benchmark):
        router = DifficultyRouter(lambda: None, RoutingConfig(), seed=0)
        example = tiny_benchmark.dev[0]
        features = router.features(example, pre=None)
        assert features.neighbor_difficulty == 0.5
        assert features.table_count == 0 and features.column_count == 0
