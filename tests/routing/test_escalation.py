"""EscalationPolicy: probe semantics, signal ordering, event round-trip."""

from types import SimpleNamespace

from repro.execution.executor import ExecutionOutcome, ExecutionStatus
from repro.routing import EscalationEvent, EscalationPolicy


def _attempt(
    status=ExecutionStatus.OK,
    rows=((1,),),
    probe_sqls=("SELECT a FROM t", "SELECT a FROM t"),
    final_sql="SELECT a FROM t",
    values=(),
    question="list the names",
    outcome="auto",
):
    extraction = SimpleNamespace(
        values=tuple(SimpleNamespace(value=v) for v in values)
    )
    if outcome == "auto":
        outcome = ExecutionOutcome(status=status, rows=rows)
    return SimpleNamespace(
        result=SimpleNamespace(final_sql=final_sql, extraction=extraction),
        probe_sqls=tuple(probe_sqls),
        outcome=outcome,
        question=question,
    )


class TestDroppedValues:
    def test_all_literals_absent_fires(self):
        policy = EscalationPolicy()
        attempt = _attempt(values=("Alice", "Bob"), final_sql="SELECT * FROM t")
        missing = policy.dropped_values(attempt.result.extraction, "SELECT * FROM t")
        assert missing == ["Alice", "Bob"]

    def test_one_literal_present_is_confident(self):
        """Retrieval over-fetches; a single matched literal is normal and
        must not escalate."""
        policy = EscalationPolicy()
        extraction = SimpleNamespace(
            values=(SimpleNamespace(value="Alice"), SimpleNamespace(value="Bob"))
        )
        sql = "SELECT * FROM t WHERE name = 'alice'"
        assert policy.dropped_values(extraction, sql) == []

    def test_no_extraction_or_no_values_is_confident(self):
        policy = EscalationPolicy()
        assert policy.dropped_values(None, "SELECT 1") == []
        empty = SimpleNamespace(values=())
        assert policy.dropped_values(empty, "SELECT 1") == []


class TestFlippedComparison:
    def test_negated_equality_without_cue(self):
        policy = EscalationPolicy()
        detail = policy.flipped_comparison(
            "Which city has the stadium?", "SELECT c FROM t WHERE city <> 'x'"
        )
        assert detail is not None and "negation" in detail

    def test_negation_cue_justifies_inequality(self):
        policy = EscalationPolicy()
        for question in (
            "Which cities are not in Texas?",
            "List players other than goalies",
            "Which homes are outside the city limits?",
        ):
            sql = "SELECT c FROM t WHERE a <> 'x'"
            assert policy.flipped_comparison(question, sql) is None, question

    def test_less_than_on_a_lower_bound_question(self):
        policy = EscalationPolicy()
        detail = policy.flipped_comparison(
            "How many players scored more than 30 goals?",
            "SELECT COUNT(*) FROM t WHERE goals < 30",
        )
        assert detail is not None and "<" in detail

    def test_greater_than_on_an_upper_bound_question(self):
        policy = EscalationPolicy()
        detail = policy.flipped_comparison(
            "List accounts with at most 5 loans",
            "SELECT a FROM t WHERE loans > 5",
        )
        assert detail is not None and ">" in detail

    def test_matching_direction_is_confident(self):
        policy = EscalationPolicy()
        assert policy.flipped_comparison(
            "more than 30 goals", "SELECT * FROM t WHERE goals > 30"
        ) is None
        assert policy.flipped_comparison(
            "plain lookup", "SELECT name FROM t"
        ) is None


class TestAssessFast:
    def test_confident_attempt_serves(self):
        assert EscalationPolicy().assess_fast(_attempt()) is None

    def test_missing_outcome_is_error_status(self):
        reason, _ = EscalationPolicy().assess_fast(_attempt(outcome=None))
        assert reason == "error_status"

    def test_empty_result_escalates(self):
        attempt = _attempt(status=ExecutionStatus.EMPTY, rows=())
        reason, _ = EscalationPolicy().assess_fast(attempt)
        assert reason == "empty_result"

    def test_error_status_escalates(self):
        attempt = _attempt(status=ExecutionStatus.SYNTAX_ERROR, rows=())
        reason, _ = EscalationPolicy().assess_fast(attempt)
        assert reason == "error_status"

    def test_probe_disagreement_escalates(self):
        attempt = _attempt(probe_sqls=("SELECT a FROM t", "SELECT b FROM t"))
        reason, detail = EscalationPolicy().assess_fast(attempt)
        assert reason == "probe_disagreement"
        assert "2 distinct" in detail

    def test_probe_normalization_tolerates_formatting(self):
        attempt = _attempt(probe_sqls=("SELECT a  FROM t;", "select a from t"))
        assert EscalationPolicy().assess_fast(attempt) is None

    def test_value_probe_fires_before_comparison_probe(self):
        attempt = _attempt(
            values=("Alice",),
            final_sql="SELECT * FROM t WHERE x <> 1",
            question="plain lookup",
        )
        reason, _ = EscalationPolicy().assess_fast(attempt)
        assert reason == "value_probe"

    def test_comparison_probe_fires_last(self):
        attempt = _attempt(
            final_sql="SELECT * FROM t WHERE x <> 1", question="plain lookup"
        )
        reason, _ = EscalationPolicy().assess_fast(attempt)
        assert reason == "comparison_probe"

    def test_probes_can_be_disabled(self):
        policy = EscalationPolicy(value_probe=False, comparison_probe=False)
        attempt = _attempt(
            values=("Alice",),
            final_sql="SELECT * FROM t WHERE x <> 1",
            question="plain lookup",
        )
        assert policy.assess_fast(attempt) is None


def _candidate(status=ExecutionStatus.OK, rows=((1,),)):
    from repro.core.refinement import RefinedCandidate

    return RefinedCandidate(
        raw_sql="s",
        aligned_sql="s",
        final_sql="s",
        outcome=ExecutionOutcome(status=status, rows=rows),
    )


class TestAssessFull:
    def test_unanimous_vote_serves(self):
        result = SimpleNamespace(
            refinement=SimpleNamespace(candidates=[_candidate(), _candidate()])
        )
        assert EscalationPolicy().assess_full(result) is None

    def test_thin_vote_escalates(self):
        candidates = [
            _candidate(rows=((1,),)),
            _candidate(rows=((2,),)),
            _candidate(rows=((3,),)),
        ]
        result = SimpleNamespace(refinement=SimpleNamespace(candidates=candidates))
        reason, _ = EscalationPolicy(vote_floor=0.5).assess_full(result)
        assert reason == "low_vote_share"

    def test_no_valid_candidate_escalates(self):
        candidates = [_candidate(status=ExecutionStatus.SYNTAX_ERROR, rows=())]
        result = SimpleNamespace(refinement=SimpleNamespace(candidates=candidates))
        reason, _ = EscalationPolicy().assess_full(result)
        assert reason == "no_valid_candidate"

    def test_skipped_refinement_is_not_judged(self):
        # Deadline-truncated results have no refinement; serving beats a
        # speculative escalation that would spend more budget.
        result = SimpleNamespace(refinement=None)
        assert EscalationPolicy().assess_full(result) is None


class TestEscalationEvent:
    def test_dict_round_trip(self):
        event = EscalationEvent(
            from_tier="fast",
            to_tier="full",
            reason="value_probe",
            detail="no retrieved value made the SQL",
            tokens_spent=412,
            model_seconds_spent=0.25,
        )
        assert EscalationEvent.from_dict(event.to_dict()) == event
