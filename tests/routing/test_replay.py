"""Routed journal replay: tier-faithful records, byte-identical recovery."""

import json

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.routing import TieredPipeline
from repro.serving import ServingJournal, assemble_report, recover_run


def _tiered(tiny_benchmark):
    llm = SimulatedLLM(GPT_4O, seed=0)
    base = OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=5))
    return TieredPipeline(base)


@pytest.fixture(scope="module")
def workload(tiny_benchmark):
    dev = tiny_benchmark.dev
    # Repeats exercise the cached-commit path alongside fresh serves.
    return list(dev[:4]) + [dev[0], dev[2]]


class TestJournalPayload:
    def test_commit_round_trips_routing_info(self, tiny_benchmark, tmp_path):
        tiered = _tiered(tiny_benchmark)
        example = tiny_benchmark.dev[0]
        result = tiered.answer(example)
        journal = ServingJournal(tmp_path / "j.jsonl")
        seq = journal.accept(example)
        journal.commit(seq, "ok", result=result)

        record = ServingJournal(tmp_path / "j.jsonl").committed(seq)
        decoded, _cost = ServingJournal.decode_result(record)
        assert decoded.routing is not None
        assert decoded.routing.to_dict() == result.routing.to_dict()
        assert decoded.final_sql == result.final_sql

    def test_unrouted_commit_bytes_are_unchanged(self, tiny_pipeline,
                                                 tiny_benchmark, tmp_path):
        """Plain results must journal exactly as before routing existed —
        no ``routing`` key, so historical journals stay byte-compatible."""
        example = tiny_benchmark.dev[0]
        result = tiny_pipeline.answer(example)
        journal = ServingJournal(tmp_path / "j.jsonl")
        journal.commit(journal.accept(example), "ok", result=result)
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        committed = json.loads(lines[-1])
        assert "routing" not in committed["result"]


class TestRecovery:
    def _report_doc(self, journal_path, tiny_benchmark, workload):
        tiered = _tiered(tiny_benchmark)
        journal = ServingJournal(journal_path)
        journal.write_header({"test": "routed-recovery"})
        outcomes = recover_run(journal, tiered, workload)
        report = assemble_report(outcomes, workload, tiered, name="routed")
        return report.deterministic_dict()

    def test_killed_run_recovers_byte_identically(self, tiny_benchmark,
                                                  workload, tmp_path):
        full_path = tmp_path / "full.jsonl"
        reference = self._report_doc(full_path, tiny_benchmark, workload)

        # Chop the journal after its third commit — the simulated SIGKILL.
        killed_path = tmp_path / "killed.jsonl"
        commits = 0
        kept = []
        for line in full_path.read_text().splitlines():
            kept.append(line)
            if json.loads(line).get("type") == "committed":
                commits += 1
                if commits == 3:
                    break
        killed_path.write_text("\n".join(kept) + "\n")

        recovered = self._report_doc(killed_path, tiny_benchmark, workload)
        assert json.dumps(recovered, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_report_meta_carries_the_tier_mix(self, tiny_benchmark, workload,
                                              tmp_path):
        doc = self._report_doc(tmp_path / "j.jsonl", tiny_benchmark, workload)
        meta = doc.get("meta", {})
        assert sum(meta.get("tier_mix", {}).values()) == len(workload)

    def test_unrouted_reports_have_no_meta(self, tiny_pipeline, tiny_benchmark,
                                           tmp_path):
        workload = list(tiny_benchmark.dev[:2])
        journal = ServingJournal(tmp_path / "j.jsonl")
        outcomes = recover_run(journal, tiny_pipeline, workload)
        report = assemble_report(outcomes, workload, tiny_pipeline)
        assert "meta" not in report.deterministic_dict()
