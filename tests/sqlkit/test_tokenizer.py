"""Tokenizer tests: token categories, quoting forms, comments, errors."""

import pytest

from repro.sqlkit.tokenizer import Token, TokenizeError, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From wHeRe")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifier_not_keyword(self):
        (token,) = tokenize("patients")[:-1]
        assert token.type is TokenType.IDENT
        assert token.value == "patients"

    def test_eof_terminates(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only(self):
        assert len(tokenize("   \n\t  ")) == 1

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]

    def test_operators(self):
        assert values("= <> <= >= != < > + - * / % ||") == [
            "=", "<>", "<=", ">=", "!=", "<", ">", "+", "-", "*", "/", "%", "||",
        ]


class TestStringsAndIdentifiers:
    def test_single_quoted_string(self):
        (token,) = tokenize("'hello'")[:-1]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_doubled_quote_escape(self):
        (token,) = tokenize("'it''s'")[:-1]
        assert token.value == "it's"

    def test_double_quoted_identifier(self):
        (token,) = tokenize('"First Date"')[:-1]
        assert token.type is TokenType.IDENT
        assert token.value == "First Date"

    def test_backtick_identifier(self):
        (token,) = tokenize("`First Date`")[:-1]
        assert token.type is TokenType.IDENT
        assert token.value == "First Date"

    def test_bracket_identifier(self):
        (token,) = tokenize("[First Date]")[:-1]
        assert token.type is TokenType.IDENT
        assert token.value == "First Date"

    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_unterminated_backtick_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("`oops")

    def test_unterminated_bracket_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("[oops")


class TestNumbers:
    @pytest.mark.parametrize(
        "text", ["1", "42", "3.14", ".5", "1e9", "2.5E-3", "7e+2"]
    )
    def test_number_forms(self, text):
        (token,) = tokenize(text)[:-1]
        assert token.type is TokenType.NUMBER
        assert token.value == text

    def test_number_then_dot_ident(self):
        tokens = tokenize("1.5x")
        assert tokens[0].value == "1.5"
        assert tokens[1].value == "x"


class TestComments:
    def test_line_comment_skipped(self):
        assert values("SELECT -- a comment\n 1") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* stuff */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT /* nope")


class TestErrorsAndHelpers:
    def test_unexpected_character(self):
        with pytest.raises(TokenizeError) as info:
            tokenize("SELECT @x")
        assert "@" in str(info.value)

    def test_position_recorded(self):
        with pytest.raises(TokenizeError) as info:
            tokenize("ab @")
        assert info.value.position == 3

    def test_is_keyword_helper(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")

    def test_ident_is_not_keyword_helper(self):
        token = Token(TokenType.IDENT, "SELECT", 0)
        assert not token.is_keyword("SELECT")

    def test_full_statement_token_stream(self):
        sql = "SELECT COUNT(*) FROM t WHERE x = 'y' LIMIT 1"
        assert kinds(sql) == [
            TokenType.KEYWORD,  # SELECT
            TokenType.IDENT,    # COUNT
            TokenType.PUNCT,    # (
            TokenType.OPERATOR, # *
            TokenType.PUNCT,    # )
            TokenType.KEYWORD,  # FROM
            TokenType.IDENT,    # t
            TokenType.KEYWORD,  # WHERE
            TokenType.IDENT,    # x
            TokenType.OPERATOR, # =
            TokenType.STRING,   # 'y'
            TokenType.KEYWORD,  # LIMIT
            TokenType.NUMBER,   # 1
        ]
