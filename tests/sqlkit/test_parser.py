"""Parser tests: every clause of the supported grammar, plus error cases."""

import pytest

from repro.sqlkit.ast import (
    Between,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Exists,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    Subquery,
    UnaryOp,
)
from repro.sqlkit.parser import ParseError, parse_expression, parse_select


class TestSelectList:
    def test_simple_column(self):
        select = parse_select("SELECT a FROM t")
        assert select.items[0].expr == ColumnRef("a")

    def test_qualified_column(self):
        select = parse_select("SELECT t.a FROM t")
        assert select.items[0].expr == ColumnRef("a", "t")

    def test_star(self):
        select = parse_select("SELECT * FROM t")
        assert select.items[0].expr == Star()

    def test_table_star(self):
        select = parse_select("SELECT t.* FROM t")
        assert select.items[0].expr == Star(table="t")

    def test_alias_with_as(self):
        select = parse_select("SELECT a AS b FROM t")
        assert select.items[0].alias == "b"

    def test_alias_without_as(self):
        select = parse_select("SELECT a b FROM t")
        assert select.items[0].alias == "b"

    def test_multiple_items(self):
        select = parse_select("SELECT a, b, c FROM t")
        assert len(select.items) == 3

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_all_keyword_ignored(self):
        assert not parse_select("SELECT ALL a FROM t").distinct

    def test_count_star(self):
        select = parse_select("SELECT COUNT(*) FROM t")
        assert select.items[0].expr == FuncCall("COUNT", (Star(),))

    def test_count_distinct(self):
        select = parse_select("SELECT COUNT(DISTINCT a) FROM t")
        func = select.items[0].expr
        assert func.distinct
        assert func.args == (ColumnRef("a"),)

    def test_no_from(self):
        select = parse_select("SELECT 1")
        assert select.from_table is None


class TestFromAndJoins:
    def test_table_alias(self):
        select = parse_select("SELECT a FROM Patient AS T1")
        assert select.from_table.name == "Patient"
        assert select.from_table.alias == "T1"

    def test_table_alias_no_as(self):
        select = parse_select("SELECT a FROM Patient T1")
        assert select.from_table.alias == "T1"

    def test_inner_join(self):
        select = parse_select("SELECT a FROM t INNER JOIN u ON t.id = u.id")
        assert select.joins[0].kind == "INNER"
        assert select.joins[0].condition == BinaryOp(
            "=", ColumnRef("id", "t"), ColumnRef("id", "u")
        )

    def test_bare_join_is_inner(self):
        select = parse_select("SELECT a FROM t JOIN u ON t.id = u.id")
        assert select.joins[0].kind == "INNER"

    def test_left_join(self):
        select = parse_select("SELECT a FROM t LEFT JOIN u ON t.id = u.id")
        assert select.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        select = parse_select("SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.id")
        assert select.joins[0].kind == "LEFT"

    def test_cross_join(self):
        select = parse_select("SELECT a FROM t CROSS JOIN u")
        assert select.joins[0].kind == "CROSS"
        assert select.joins[0].condition is None

    def test_comma_join_is_cross(self):
        select = parse_select("SELECT a FROM t, u")
        assert select.joins[0].kind == "CROSS"

    def test_multiple_joins(self):
        select = parse_select(
            "SELECT a FROM t JOIN u ON t.id = u.id JOIN v ON u.id = v.id"
        )
        assert len(select.joins) == 2

    def test_derived_table(self):
        select = parse_select("SELECT a FROM (SELECT b FROM t) AS d")
        assert select.from_table.subquery is not None
        assert select.from_table.alias == "d"


class TestWhere:
    def test_comparison_ops(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            select = parse_select(f"SELECT a FROM t WHERE a {op} 1")
            assert select.where.op == op

    def test_bang_equals_normalized(self):
        select = parse_select("SELECT a FROM t WHERE a != 1")
        assert select.where.op == "<>"

    def test_and_or_precedence(self):
        select = parse_select("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert select.where.op == "OR"
        assert select.where.right.op == "AND"

    def test_not(self):
        select = parse_select("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(select.where, UnaryOp)
        assert select.where.op == "NOT"

    def test_between(self):
        select = parse_select("SELECT a FROM t WHERE x BETWEEN 1 AND 5")
        assert select.where == Between(
            ColumnRef("x"), Literal.number(1), Literal.number(5)
        )

    def test_not_between(self):
        select = parse_select("SELECT a FROM t WHERE x NOT BETWEEN 1 AND 5")
        assert select.where.negated

    def test_in_list(self):
        select = parse_select("SELECT a FROM t WHERE x IN (1, 2, 3)")
        assert isinstance(select.where, InList)
        assert len(select.where.items) == 3

    def test_not_in(self):
        select = parse_select("SELECT a FROM t WHERE x NOT IN (1)")
        assert select.where.negated

    def test_in_subquery(self):
        select = parse_select("SELECT a FROM t WHERE x IN (SELECT y FROM u)")
        assert select.where.subquery is not None

    def test_like(self):
        select = parse_select("SELECT a FROM t WHERE x LIKE '%q%'")
        assert isinstance(select.where, Like)

    def test_not_like(self):
        select = parse_select("SELECT a FROM t WHERE x NOT LIKE 'q'")
        assert select.where.negated

    def test_is_null(self):
        select = parse_select("SELECT a FROM t WHERE x IS NULL")
        assert select.where == IsNull(ColumnRef("x"))

    def test_is_not_null(self):
        select = parse_select("SELECT a FROM t WHERE x IS NOT NULL")
        assert select.where == IsNull(ColumnRef("x"), negated=True)

    def test_scalar_subquery(self):
        select = parse_select(
            "SELECT a FROM t WHERE x = (SELECT MAX(x) FROM t)"
        )
        assert isinstance(select.where.right, Subquery)

    def test_exists(self):
        select = parse_select(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)"
        )
        assert isinstance(select.where, Exists)


class TestGroupOrderLimit:
    def test_group_by(self):
        select = parse_select("SELECT a FROM t GROUP BY a, b")
        assert len(select.group_by) == 2

    def test_having(self):
        select = parse_select("SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert select.having is not None

    def test_order_by_default_asc(self):
        select = parse_select("SELECT a FROM t ORDER BY a")
        assert not select.order_by[0].desc

    def test_order_by_desc(self):
        select = parse_select("SELECT a FROM t ORDER BY a DESC")
        assert select.order_by[0].desc

    def test_order_by_multiple(self):
        select = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert len(select.order_by) == 2

    def test_limit(self):
        assert parse_select("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_offset(self):
        select = parse_select("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert (select.limit, select.offset) == (5, 2)

    def test_limit_comma_form(self):
        select = parse_select("SELECT a FROM t LIMIT 2, 5")
        assert (select.limit, select.offset) == (5, 2)


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesised(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus_folds_into_literal(self):
        assert parse_expression("-5") == Literal.number(-5)

    def test_unary_minus_on_column(self):
        expr = parse_expression("-x")
        assert isinstance(expr, UnaryOp)

    def test_unary_plus_dropped(self):
        assert parse_expression("+5") == Literal.number(5)

    def test_concat(self):
        assert parse_expression("a || b").op == "||"

    def test_case_when(self):
        expr = parse_expression("CASE WHEN x = 1 THEN 'a' ELSE 'b' END")
        assert isinstance(expr, Case)
        assert expr.else_ == Literal.string("b")

    def test_case_with_operand(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'a' END")
        cond = expr.whens[0][0]
        assert cond == BinaryOp("=", ColumnRef("x"), Literal.number(1))

    def test_cast(self):
        expr = parse_expression("CAST(x AS REAL)")
        assert expr == Cast(ColumnRef("x"), "REAL")

    def test_strftime(self):
        expr = parse_expression("strftime('%Y', t.d)")
        assert expr == FuncCall(
            "STRFTIME", (Literal.string("%Y"), ColumnRef("d", "t"))
        )

    def test_null_literal(self):
        assert parse_expression("NULL") == Literal.null()

    def test_float_literal(self):
        assert parse_expression("2.5") == Literal.number(2.5)

    def test_quoted_column_with_space(self):
        expr = parse_expression("t.`First Date`")
        assert expr == ColumnRef("First Date", "t")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "SELECT a FROM t ORDER a",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t trailing garbage (",
            "SELECT a FROM t JOIN u",
            "SELECT a FROM t WHERE x NOT 1",
            "SELECT a FROM t WHERE x BETWEEN 1",
            "CASE END",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_select(bad) if bad.startswith("SELECT") else parse_expression(bad)

    def test_trailing_semicolon_ok(self):
        assert parse_select("SELECT a FROM t;").items

    def test_paper_example(self):
        sql = (
            "SELECT COUNT(DISTINCT T1.ID) FROM Patient AS T1 "
            "INNER JOIN Laboratory AS T2 ON T1.ID = T2.ID "
            "WHERE T2.IGA > 80 AND T2.IGA < 500 "
            "AND strftime('%Y', T1.`First Date`) >= '1990'"
        )
        select = parse_select(sql)
        assert select.items[0].expr.distinct
        assert len(select.joins) == 1
