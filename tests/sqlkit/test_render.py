"""Renderer tests: canonical output and parse→render→parse round trips,
including a hypothesis property over generated ASTs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlkit.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
    UnaryOp,
)
from repro.sqlkit.parser import parse_select
from repro.sqlkit.render import quote_identifier, render, render_expr


class TestQuoting:
    def test_safe_identifier_unquoted(self):
        assert quote_identifier("Patient") == "Patient"

    def test_space_identifier_quoted(self):
        assert quote_identifier("First Date") == "`First Date`"

    def test_keyword_identifier_quoted(self):
        assert quote_identifier("order") == "`order`"

    def test_backtick_escaped(self):
        assert quote_identifier("a`b") == "`a``b`"

    def test_leading_digit_quoted(self):
        assert quote_identifier("1abc") == "`1abc`"


class TestRenderExpr:
    def test_string_escape(self):
        assert render_expr(Literal.string("it's")) == "'it''s'"

    def test_null(self):
        assert render_expr(Literal.null()) == "NULL"

    def test_integer(self):
        assert render_expr(Literal.number(42)) == "42"

    def test_float(self):
        assert render_expr(Literal.number(2.5)) == "2.5"

    def test_negative_number(self):
        assert render_expr(Literal.number(-3)) == "-3"

    def test_qualified_column(self):
        assert render_expr(ColumnRef("IGA", "T2")) == "T2.IGA"

    def test_count_distinct(self):
        expr = FuncCall("COUNT", (ColumnRef("ID"),), distinct=True)
        assert render_expr(expr) == "COUNT(DISTINCT ID)"

    def test_precedence_parens(self):
        expr = BinaryOp(
            "*",
            BinaryOp("+", Literal.number(1), Literal.number(2)),
            Literal.number(3),
        )
        assert render_expr(expr) == "(1 + 2) * 3"

    def test_no_spurious_parens(self):
        expr = BinaryOp(
            "+",
            BinaryOp("*", Literal.number(1), Literal.number(2)),
            Literal.number(3),
        )
        assert render_expr(expr) == "1 * 2 + 3"

    def test_or_inside_and_parenthesised(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("OR", ColumnRef("a"), ColumnRef("b")),
            ColumnRef("c"),
        )
        assert render_expr(expr) == "(a OR b) AND c"

    def test_is_not_null(self):
        assert render_expr(IsNull(ColumnRef("x"), negated=True)) == "x IS NOT NULL"

    def test_between(self):
        expr = Between(ColumnRef("x"), Literal.number(1), Literal.number(5))
        assert render_expr(expr) == "x BETWEEN 1 AND 5"

    def test_not_like(self):
        expr = Like(ColumnRef("x"), Literal.string("%q%"), negated=True)
        assert render_expr(expr) == "x NOT LIKE '%q%'"

    def test_in_list(self):
        expr = InList(ColumnRef("x"), items=(Literal.number(1), Literal.number(2)))
        assert render_expr(expr) == "x IN (1, 2)"


ROUND_TRIP_SQL = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS c FROM t",
    "SELECT COUNT(*) FROM t WHERE x = 'y'",
    "SELECT t.a FROM t AS x WHERE x.a > 1 AND x.b < 2 OR x.c = 3",
    "SELECT a FROM t INNER JOIN u AS T2 ON t.id = T2.id WHERE T2.v IS NOT NULL",
    "SELECT a FROM t LEFT JOIN u ON t.id = u.id",
    "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 3",
    "SELECT a FROM t ORDER BY a DESC LIMIT 1 OFFSET 2",
    "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 1)",
    "SELECT a FROM t WHERE x BETWEEN 1 AND 5 AND y NOT LIKE 'q%'",
    "SELECT CASE WHEN x = 1 THEN 'a' ELSE 'b' END FROM t",
    "SELECT CAST(x AS REAL) FROM t",
    "SELECT STRFTIME('%Y', t.`First Date`) FROM t",
    "SELECT a FROM (SELECT b FROM u) AS d",
    "SELECT `weird name`.`col name` FROM `weird name`",
    "SELECT -x, NOT y = 1 FROM t",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_SQL)
    def test_parse_render_parse_fixed_point(self, sql):
        first = parse_select(sql)
        rendered = render(first)
        second = parse_select(rendered)
        assert first == second
        # Rendering is canonical: a second round trip is a fixed point.
        assert render(second) == rendered


# --------------------------------------------------------- property test

_names = st.sampled_from(["a", "b", "col", "First Date", "x1"])
_tables = st.sampled_from(["t", "u", "Tab Le"])


def _literals():
    return st.one_of(
        st.integers(min_value=-1000, max_value=1000).map(Literal.number),
        st.text(
            alphabet="abc XYZ'%_", min_size=0, max_size=8
        ).map(Literal.string),
        st.just(Literal.null()),
    )


def _columns():
    return st.builds(
        ColumnRef, column=_names, table=st.one_of(st.none(), _tables)
    )


def _atoms():
    return st.one_of(_literals(), _columns())


def _expressions(depth=2):
    if depth == 0:
        return _atoms()
    sub = _expressions(depth - 1)
    return st.one_of(
        _atoms(),
        st.builds(
            BinaryOp,
            op=st.sampled_from(["=", "<>", "<", ">", "+", "-", "*", "AND", "OR"]),
            left=sub,
            right=sub,
        ),
        st.builds(UnaryOp, op=st.just("NOT"), operand=sub),
        st.builds(IsNull, expr=_columns(), negated=st.booleans()),
        st.builds(
            FuncCall,
            name=st.sampled_from(["COUNT", "MAX", "ABS"]),
            args=st.tuples(sub),
            distinct=st.booleans(),
        ),
    )


def _selects():
    return st.builds(
        Select,
        items=st.lists(
            st.builds(SelectItem, expr=_expressions(), alias=st.none()),
            min_size=1,
            max_size=3,
        ).map(tuple),
        from_table=st.builds(TableRef, name=_tables, alias=st.none()),
        joins=st.just(()),
        where=st.one_of(st.none(), _expressions()),
        group_by=st.lists(_columns(), max_size=2).map(tuple),
        having=st.none(),
        order_by=st.lists(
            st.builds(OrderItem, expr=_columns(), desc=st.booleans()), max_size=2
        ).map(tuple),
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
        offset=st.none(),
        distinct=st.booleans(),
    )


class TestRenderProperty:
    @settings(max_examples=200, deadline=None)
    @given(_selects())
    def test_generated_ast_round_trips(self, select):
        rendered = render(select)
        assert parse_select(rendered) == select
