"""SQL-Like intermediate language tests."""

import pytest

from repro.sqlkit.ast import ColumnRef, FuncCall
from repro.sqlkit.parser import ParseError, parse_select
from repro.sqlkit.sql_like import (
    parse_sql_like,
    render_sql_like,
    select_to_sql_like,
)


class TestParseSQLLike:
    def test_show_keyword(self):
        sql_like = parse_sql_like("Show COUNT(*) WHERE t.x = 1")
        assert sql_like.items[0].expr == FuncCall("COUNT", (parse_sql_like("Show *").items[0].expr,))

    def test_select_keyword_accepted(self):
        assert parse_sql_like("SELECT t.a").items

    def test_other_keyword_rejected(self):
        with pytest.raises(ParseError):
            parse_sql_like("FETCH t.a")

    def test_distinct(self):
        assert parse_sql_like("Show DISTINCT t.a").distinct

    def test_group_having(self):
        sql_like = parse_sql_like("Show t.a GROUP BY t.a HAVING COUNT(*) > 2")
        assert len(sql_like.group_by) == 1
        assert sql_like.having is not None

    def test_order_limit_offset(self):
        sql_like = parse_sql_like("Show t.a ORDER BY t.b DESC LIMIT 1 OFFSET 2")
        assert sql_like.order_by[0].desc
        assert sql_like.limit == 1
        assert sql_like.offset == 2

    def test_tables_in_order(self):
        sql_like = parse_sql_like("Show A.x, B.y WHERE C.z = 1")
        assert sql_like.tables() == ("A", "B", "C")

    def test_tables_deduplicated(self):
        sql_like = parse_sql_like("Show A.x, A.y WHERE A.z = 1")
        assert sql_like.tables() == ("A",)


class TestRenderSQLLike:
    def test_round_trip(self):
        text = (
            "Show COUNT(DISTINCT Patient.ID) WHERE Laboratory.IGA > 80 "
            "AND Laboratory.IGA < 500"
        )
        sql_like = parse_sql_like(text)
        assert parse_sql_like(render_sql_like(sql_like)) == sql_like

    def test_renders_show(self):
        assert render_sql_like(parse_sql_like("Show t.a")).startswith("Show ")

    @pytest.mark.parametrize(
        "text",
        [
            "Show t.a",
            "Show DISTINCT t.a, t.b",
            "Show t.a WHERE t.b IS NOT NULL ORDER BY t.b DESC LIMIT 1",
            "Show t.a GROUP BY t.a HAVING COUNT(*) > 1",
            "Show t.a ORDER BY t.b LIMIT 3 OFFSET 1",
            "Show t.a AS alias WHERE t.x = 'v'",
        ],
    )
    def test_round_trips(self, text):
        sql_like = parse_sql_like(text)
        assert parse_sql_like(render_sql_like(sql_like)) == sql_like


class TestSelectToSQLLike:
    def test_aliases_resolved(self):
        select = parse_select(
            "SELECT T1.ID FROM Patient AS T1 INNER JOIN Laboratory AS T2 "
            "ON T1.ID = T2.ID WHERE T2.IGA > 80"
        )
        sql_like = select_to_sql_like(select)
        assert sql_like.items[0].expr == ColumnRef("ID", "Patient")
        refs = sql_like.tables()
        assert refs == ("Patient", "Laboratory")

    def test_join_conditions_dropped(self):
        select = parse_select(
            "SELECT a.x FROM a INNER JOIN b ON a.id = b.id WHERE b.y = 1"
        )
        sql_like = select_to_sql_like(select)
        # Only the WHERE filter survives, not the join equality.
        assert sql_like.where == parse_sql_like("Show z WHERE b.y = 1").where

    def test_limit_offset_preserved(self):
        select = parse_select("SELECT a FROM t ORDER BY a DESC LIMIT 1 OFFSET 3")
        sql_like = select_to_sql_like(select)
        assert (sql_like.limit, sql_like.offset) == (1, 3)

    def test_distinct_preserved(self):
        select = parse_select("SELECT DISTINCT a FROM t")
        assert select_to_sql_like(select).distinct

    def test_unaliased_table_untouched(self):
        select = parse_select("SELECT Patient.ID FROM Patient")
        sql_like = select_to_sql_like(select)
        assert sql_like.items[0].expr == ColumnRef("ID", "Patient")
