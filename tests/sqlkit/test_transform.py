"""AST traversal/rewrite utility tests."""

from repro.sqlkit.ast import BinaryOp, ColumnRef, FuncCall, Literal
from repro.sqlkit.parser import parse_select
from repro.sqlkit.render import render
from repro.sqlkit.transform import (
    collect_column_refs,
    collect_functions,
    collect_literals,
    collect_tables,
    map_expressions,
    replace_nodes,
    walk,
)

SQL = (
    "SELECT COUNT(DISTINCT T1.ID) FROM Patient AS T1 "
    "INNER JOIN Laboratory AS T2 ON T1.ID = T2.ID "
    "WHERE T2.IGA > 80 AND T2.Name = 'JOHN'"
)


class TestWalk:
    def test_walk_includes_root(self):
        select = parse_select(SQL)
        assert select in list(walk(select))

    def test_walk_reaches_join_condition(self):
        select = parse_select(SQL)
        refs = collect_column_refs(select)
        assert ColumnRef("ID", "T2") in refs

    def test_walk_reaches_subquery(self):
        select = parse_select(
            "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 5)"
        )
        assert Literal.number(5) in collect_literals(select)

    def test_walk_reaches_derived_table(self):
        select = parse_select("SELECT a FROM (SELECT b FROM inner_t) AS d")
        assert any(t.name == "inner_t" for t in collect_tables(select))


class TestCollectors:
    def test_collect_column_refs_order(self):
        select = parse_select("SELECT a, b FROM t WHERE c = 1")
        names = [r.column for r in collect_column_refs(select)]
        assert names == ["a", "b", "c"]

    def test_collect_literals(self):
        select = parse_select(SQL)
        values = {l.value for l in collect_literals(select)}
        assert values == {80, "JOHN"}

    def test_collect_functions(self):
        select = parse_select(SQL)
        assert [f.name for f in collect_functions(select)] == ["COUNT"]

    def test_collect_tables(self):
        select = parse_select(SQL)
        assert [t.name for t in collect_tables(select)] == ["Patient", "Laboratory"]


class TestReplace:
    def test_replace_literal(self):
        select = parse_select("SELECT a FROM t WHERE name = 'john'")

        def fix(node):
            if isinstance(node, Literal) and node.value == "john":
                return Literal.string("JOHN")
            return None

        rewritten = replace_nodes(select, fix)
        assert "JOHN" in render(rewritten)
        # Original untouched (pure rewrite).
        assert "john" in render(select)

    def test_replace_no_change_returns_equal(self):
        select = parse_select(SQL)
        rewritten = replace_nodes(select, lambda n: None)
        assert rewritten == select

    def test_map_expressions_only_touches_exprs(self):
        select = parse_select("SELECT a FROM t WHERE b = 1")
        counter = {"n": 0}

        def count(expr):
            counter["n"] += 1
            return None

        map_expressions(select, count)
        assert counter["n"] > 0

    def test_bottom_up_rewrite(self):
        # Child rewritten first; parent mapping sees the new child.
        select = parse_select("SELECT a FROM t WHERE x = 1")
        seen = []

        def watch(node):
            if isinstance(node, BinaryOp):
                seen.append(render(select.with_()) if False else node.op)
            if isinstance(node, Literal) and node.value == 1:
                return Literal.number(2)
            return None

        rewritten = replace_nodes(select, watch)
        assert Literal.number(2) in collect_literals(rewritten)

    def test_replace_function_name(self):
        select = parse_select("SELECT MAX(x) FROM t")

        def fix(node):
            if isinstance(node, FuncCall) and node.name == "MAX":
                return FuncCall("MIN", node.args)
            return None

        assert "MIN(x)" in render(replace_nodes(select, fix))
