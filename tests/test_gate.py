"""The CI perf-regression gate trips on real regressions and only those."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path


_GATE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "gate.py"
_spec = importlib.util.spec_from_file_location("gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)

BASELINE = {
    "throughput_rps": 0.24,
    "ex_retention": 0.98,
    "ex": 50.0,
    "tokens_per_request": 1870.0,
    "throughput_async": 0.90,
    "coalesced_fraction": 0.69,
    "stale_serve_total": 0,
    "reindex_catchup_seconds": 0.56,
}


class TestCompare:
    def test_identical_metrics_pass(self):
        assert gate.compare(dict(BASELINE), BASELINE) == []

    def test_improvements_pass(self):
        current = {
            "throughput_rps": 0.5,
            "ex_retention": 1.0,
            "ex": 60.0,
            "tokens_per_request": 1500.0,
            "throughput_async": 1.5,
            "coalesced_fraction": 0.8,
            "stale_serve_total": 0,
            "reindex_catchup_seconds": 0.3,
        }
        assert gate.compare(current, BASELINE) == []

    def test_25_percent_throughput_regression_fails(self):
        """The ISSUE's acceptance case: a synthetic 25% throughput drop
        must trip the 20% gate."""
        current = dict(BASELINE, throughput_rps=BASELINE["throughput_rps"] * 0.75)
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "throughput_rps" in failures[0]
        assert "25.0%" in failures[0]

    def test_19_percent_throughput_drop_tolerated(self):
        current = dict(BASELINE, throughput_rps=BASELINE["throughput_rps"] * 0.81)
        assert gate.compare(current, BASELINE) == []

    def test_retention_drop_beyond_tolerance_fails(self):
        current = dict(BASELINE, ex_retention=BASELINE["ex_retention"] - 0.05)
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "ex_retention" in failures[0]

    def test_small_retention_wobble_tolerated(self):
        current = dict(BASELINE, ex_retention=BASELINE["ex_retention"] - 0.01)
        assert gate.compare(current, BASELINE) == []

    def test_ex_drop_beyond_a_point_fails(self):
        current = dict(BASELINE, ex=BASELINE["ex"] - 1.5)
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "ex" in failures[0]

    def test_token_cost_rise_beyond_10_percent_fails(self):
        """The routing cost gate: a change that quietly defeats the fast
        path (tokens/request up 15%) must trip the 10% ratio_max gate."""
        current = dict(
            BASELINE, tokens_per_request=BASELINE["tokens_per_request"] * 1.15
        )
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "tokens_per_request" in failures[0]
        assert "above baseline" in failures[0]

    def test_9_percent_token_cost_rise_tolerated(self):
        current = dict(
            BASELINE, tokens_per_request=BASELINE["tokens_per_request"] * 1.09
        )
        assert gate.compare(current, BASELINE) == []

    def test_async_throughput_regression_fails(self):
        """A change that degrades micro-batching (async virtual throughput
        down 25%) must trip the 20% gate."""
        current = dict(
            BASELINE, throughput_async=BASELINE["throughput_async"] * 0.75
        )
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "throughput_async" in failures[0]

    def test_coalesced_fraction_drop_fails(self):
        """A change that quietly defeats single-flight dedup must trip
        the 0.05-absolute coalesced-fraction gate."""
        current = dict(
            BASELINE, coalesced_fraction=BASELINE["coalesced_fraction"] - 0.10
        )
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "coalesced_fraction" in failures[0]

    def test_small_coalesced_fraction_wobble_tolerated(self):
        current = dict(
            BASELINE, coalesced_fraction=BASELINE["coalesced_fraction"] - 0.03
        )
        assert gate.compare(current, BASELINE) == []

    def test_token_cost_drop_passes(self):
        current = dict(
            BASELINE, tokens_per_request=BASELINE["tokens_per_request"] * 0.5
        )
        assert gate.compare(current, BASELINE) == []

    def test_missing_metric_fails_loudly(self):
        current = {k: v for k, v in BASELINE.items() if k != "ex"}
        failures = gate.compare(current, BASELINE)
        assert any("missing from current" in f for f in failures)
        failures = gate.compare(BASELINE, current)
        assert any("missing from baseline" in f for f in failures)

    def test_multiple_regressions_all_reported(self):
        current = {
            "throughput_rps": 0.1,
            "ex_retention": 0.5,
            "ex": 10.0,
            "tokens_per_request": 5000.0,
            "throughput_async": 0.1,
            "coalesced_fraction": 0.1,
            "stale_serve_total": 3,
            "reindex_catchup_seconds": 2.0,
        }
        assert len(gate.compare(current, BASELINE)) == 8

    def test_one_stale_serve_fails_the_hard_ceiling(self):
        """The live-mutation gate: stale_serve_total is an absolute_max
        with tolerance 0 — a single answer served against a dead catalog
        fails the build, regardless of every other metric."""
        current = dict(BASELINE, stale_serve_total=1)
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "stale_serve_total" in failures[0]
        assert "hard ceiling" in failures[0]

    def test_zero_stale_serves_pass(self):
        assert gate.compare(dict(BASELINE), BASELINE) == []

    def test_reindex_catchup_rise_beyond_20_percent_fails(self):
        current = dict(
            BASELINE,
            reindex_catchup_seconds=BASELINE["reindex_catchup_seconds"] * 1.25,
        )
        failures = gate.compare(current, BASELINE)
        assert len(failures) == 1
        assert "reindex_catchup_seconds" in failures[0]

    def test_reindex_catchup_small_rise_tolerated(self):
        current = dict(
            BASELINE,
            reindex_catchup_seconds=BASELINE["reindex_catchup_seconds"] * 1.15,
        )
        assert gate.compare(current, BASELINE) == []

    def test_reindex_catchup_drop_passes(self):
        current = dict(
            BASELINE,
            reindex_catchup_seconds=BASELINE["reindex_catchup_seconds"] * 0.5,
        )
        assert gate.compare(current, BASELINE) == []

    def test_custom_tolerances(self):
        current = dict(BASELINE, throughput_rps=BASELINE["throughput_rps"] * 0.9)
        strict = {"throughput_rps": ("ratio", 0.05)}
        assert gate.compare(current, BASELINE, strict)
        lax = {"throughput_rps": ("ratio", 0.5)}
        assert gate.compare(current, BASELINE, lax) == []


class TestCheckCommand:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", BASELINE)
        baseline = self._write(tmp_path, "baseline.json", BASELINE)
        assert gate.main(["check", current, "--baseline", baseline]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        regressed = dict(BASELINE, throughput_rps=BASELINE["throughput_rps"] * 0.7)
        current = self._write(tmp_path, "current.json", regressed)
        baseline = self._write(tmp_path, "baseline.json", BASELINE)
        assert gate.main(["check", current, "--baseline", baseline]) == 1
        assert "GATE FAILED" in capsys.readouterr().out


class TestCommittedBaseline:
    def test_baseline_is_committed_and_gateable(self):
        baseline = json.loads(gate.BASELINE_PATH.read_text())
        for metric in gate.TOLERANCES:
            assert metric in baseline, f"baseline missing gated metric {metric}"
        assert baseline["throughput_rps"] > 0
        assert 0 < baseline["ex_retention"] <= 1.0 + 1e-9
        assert gate.compare(baseline, baseline) == []
