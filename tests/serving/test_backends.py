"""BackendPool: health-score routing, sticky primary, failover, shadows.

All tests drive the pool with scriptable fake replicas — routing behaviour
is independent of what the replicas actually compute.
"""

import pytest

from repro.llm.base import LLMResponse
from repro.reliability.breaker import CircuitBreaker
from repro.serving import AllBackendsFailedError, BackendPool
from repro.serving.health import HealthMonitor


class FakeReplica:
    """Scriptable LLMClient: fails while ``failing`` is True."""

    def __init__(self, name, failing=False):
        self.model_name = name
        self.failing = failing
        self.calls = 0

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        self.calls += 1
        if self.failing:
            raise TimeoutError(f"{self.model_name} down")
        return [LLMResponse(text=f"answer from {self.model_name}")]


def make_pool(n=3, failing=(), **kwargs):
    replicas = [FakeReplica(f"m{i}", failing=i in failing) for i in range(n)]
    return BackendPool(replicas, **kwargs), replicas


class TestRouting:
    def test_requires_a_replica(self):
        with pytest.raises(ValueError):
            BackendPool([])

    def test_healthy_primary_serves_everything(self):
        pool, replicas = make_pool(3)
        for _ in range(5):
            assert pool.complete("q")[0].text == "answer from m0"
        assert replicas[0].calls == 5
        assert replicas[1].calls == 0
        assert pool.stats.served == {0: 5}
        assert pool.stats.failovers == 0

    def test_served_counts_sum_to_calls(self):
        pool, _ = make_pool(3, failing={0})
        for _ in range(4):
            pool.complete("q")
        assert sum(pool.stats.served.values()) == pool.stats.calls == 4

    def test_unobserved_replicas_score_one(self):
        pool, _ = make_pool(2)
        assert pool.score(0) == 1.0
        assert pool.score(1) == 1.0


class TestFailover:
    def test_fails_over_to_next_replica_in_same_call(self):
        pool, _ = make_pool(3, failing={0})
        responses = pool.complete("q")
        assert responses[0].text == "answer from m1"
        assert pool.stats.failovers == 1
        assert pool.stats.errors == {0: 1}
        assert pool.stats.served == {1: 1}

    def test_all_replicas_failing_raises_with_causes(self):
        pool, _ = make_pool(2, failing={0, 1})
        with pytest.raises(AllBackendsFailedError) as info:
            pool.complete("q")
        assert len(info.value.causes) == 2
        assert pool.stats.exhausted == 1
        assert pool.stats.calls == 0

    def test_failures_feed_the_shared_health_monitor(self):
        health = HealthMonitor(window=8)
        pool, _ = make_pool(2, failing={0}, health=health)
        pool.complete("q")
        assert health.component_status("backend:0")["failure_rate"] == 1.0
        assert health.component_status("backend:1")["status"] == "healthy"

    def test_breaker_open_zeroes_the_score(self):
        pool, replicas = make_pool(2)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=10)
        breaker.record_failure()
        replicas[0].breaker = breaker
        assert pool.score(0) == 0.0
        pool.complete("q")
        assert pool.stats.served == {1: 1}


class TestStickyPrimary:
    def test_primary_moves_off_a_failing_backend(self):
        pool, replicas = make_pool(2, failing={0}, window=4)
        for _ in range(3):
            pool.complete("q")
        assert pool.snapshot()["primary"] == 1
        assert pool.stats.primary_switches >= 1
        # after the switch the new primary serves without trying m0
        before = replicas[0].calls
        pool.complete("q")
        assert replicas[0].calls == before

    def test_stickiness_survives_an_isolated_failure(self):
        # one failure after a long success history: the window keeps the
        # score high and the decayed sticky bonus still beats the rival
        pool, replicas = make_pool(2, window=64, stickiness=0.3)
        for _ in range(9):
            pool.complete("q")
        replicas[0].failing = True
        pool.complete("q")  # fails over for this call only
        replicas[0].failing = False
        pool.complete("q")
        assert pool.snapshot()["primary"] == 0

    def test_consecutive_failures_decay_the_bonus(self):
        pool, replicas = make_pool(2, window=4, stickiness=0.3, sticky_decay=0.5)
        replicas[0].failing = True
        for _ in range(4):
            pool.complete("q")
        assert pool.snapshot()["primary"] == 1


class TestShadows:
    def test_shadow_compares_without_changing_the_answer(self):
        pool, replicas = make_pool(2, shadow_every=1)
        responses = pool.complete("q")
        assert responses[0].text == "answer from m0"
        assert pool.stats.shadow_calls == 1
        # replica texts differ (they embed the model name)
        assert pool.stats.shadow_disagreements == 1
        assert replicas[1].calls == 1

    def test_shadow_agreement_counted(self):
        pool, replicas = make_pool(2, shadow_every=1)
        for replica in replicas:
            replica.model_name = "same"
        pool.complete("q")
        assert pool.stats.shadow_agreements == 1

    def test_shadow_error_never_hurts_the_served_call(self):
        pool, replicas = make_pool(2, shadow_every=1)
        replicas[1].failing = True
        responses = pool.complete("q")
        assert responses[0].text == "answer from m0"
        assert pool.stats.shadow_errors == 1

    def test_every_nth_call_is_shadowed(self):
        pool, _ = make_pool(2, shadow_every=3)
        for _ in range(6):
            pool.complete("q")
        assert pool.stats.shadow_calls == 2

    def test_single_replica_never_shadows(self):
        pool, _ = make_pool(1, shadow_every=1)
        pool.complete("q")
        assert pool.stats.shadow_calls == 0


class TestSnapshot:
    def test_snapshot_shape(self):
        pool, _ = make_pool(2, failing={0})
        pool.complete("q")
        snapshot = pool.snapshot()
        assert set(snapshot["replicas"]) == {"0", "1"}
        assert snapshot["replicas"]["0"]["health"] == "unhealthy"
        assert snapshot["calls"] == 1
        assert snapshot["failovers"] == 1
