"""HashRing: placement determinism, minimal movement, balance.

The cluster's correctness rests on three ring properties: every process
computes the same owner for a key (coordinator, workers and a later
``repro recover`` run never coordinate placement), removing a node moves
only that node's keys (surviving shards' journal segments and caches
stay valid across a rebalance), and no shard owns a grossly outsized
share of the keyspace.  All tests are fully deterministic — placement is
a pure function of (nodes, vnodes, key) through MD5.
"""

from repro.serving import HashRing
from repro.serving.cluster.ring import DEFAULT_VNODES

KEYS = [f"db_{i}" for i in range(1000)]


class TestDeterminism:
    def test_same_nodes_same_placement(self):
        first = HashRing(range(4))
        second = HashRing(range(4))
        assert all(first.lookup(k) == second.lookup(k) for k in KEYS)

    def test_placement_independent_of_insertion_order(self):
        forward = HashRing([0, 1, 2, 3])
        backward = HashRing([3, 2, 1, 0])
        assert all(forward.lookup(k) == backward.lookup(k) for k in KEYS)

    def test_placement_pinned_across_releases(self):
        # A frozen sample: if any of these move, existing journal
        # segments would replay on the wrong shard after an upgrade.
        ring = HashRing(range(3))
        assert [ring.lookup(db) for db in
                ("healthcare", "hockey", "finance", "music", "retail")] == [
            1, 1, 0, 1, 1]

    def test_empty_ring_returns_none(self):
        assert HashRing().lookup("anything") is None

    def test_add_remove_roundtrip_restores_placement(self):
        ring = HashRing(range(4))
        before = {k: ring.lookup(k) for k in KEYS}
        ring.remove(2)
        ring.add(2)
        assert {k: ring.lookup(k) for k in KEYS} == before


class TestMinimalMovement:
    def test_only_the_removed_nodes_keys_move(self):
        for victim in range(4):
            ring = HashRing(range(4))
            before = {k: ring.lookup(k) for k in KEYS}
            owned = sum(1 for owner in before.values() if owner == victim)
            ring.remove(victim)
            moved = [k for k in KEYS if ring.lookup(k) != before[k]]
            assert len(moved) == owned
            assert all(before[k] == victim for k in moved)

    def test_two_successive_permanent_deaths_move_minimally(self):
        # a cluster that loses two shards one after the other (each past
        # its restart budget) must only ever move the dead shards' keys:
        # survivors' journal segments and caches stay valid through BOTH
        # rebalances, and no key bounces through a third owner
        ring = HashRing(range(4))
        before = {k: ring.lookup(k) for k in KEYS}
        ring.remove(1)
        after_first = {k: ring.lookup(k) for k in KEYS}
        moved_first = {k for k in KEYS if after_first[k] != before[k]}
        assert all(before[k] == 1 for k in moved_first)

        ring.remove(3)
        after_second = {k: ring.lookup(k) for k in KEYS}
        moved_second = {k for k in KEYS if after_second[k] != after_first[k]}
        # only keys owned by shard 3 at the time of ITS death move now —
        # including shard-1 orphans it had adopted, which must not return
        # to a surviving shard they never belonged to mid-epoch
        assert all(after_first[k] == 3 for k in moved_second)
        # keys that never touched a dead shard never moved at all
        stable = [k for k in KEYS if before[k] not in (1, 3)]
        assert all(after_second[k] == before[k] for k in stable)
        # the two survivors own the whole keyspace, both non-empty
        owners = set(after_second.values())
        assert owners == {0, 2}
        shares = [sum(1 for k in KEYS if after_second[k] == o) for o in (0, 2)]
        assert min(shares) > 0

    def test_removal_moves_at_most_a_quarter_of_keys_on_average(self):
        # Consistent hashing moves ~1/N of the keyspace per removal;
        # modulo placement would move ~3/4.  The per-removal shares sum
        # to the whole keyspace, so the mean across victims is exactly
        # 25% — and each single removal stays well under the modulo
        # baseline.
        movements = []
        for victim in range(4):
            ring = HashRing(range(4))
            before = {k: ring.lookup(k) for k in KEYS}
            ring.remove(victim)
            movements.append(
                sum(1 for k in KEYS if ring.lookup(k) != before[k])
            )
        assert sum(movements) / 4 <= 0.25 * len(KEYS)
        assert max(movements) <= 0.30 * len(KEYS)


class TestBalance:
    def test_keyspace_share_ratio_is_bounded(self):
        for shards in (3, 4):
            placement = HashRing(range(shards)).assignments(KEYS)
            sizes = [len(keys) for keys in placement.values()]
            assert len(sizes) == shards
            assert min(sizes) > 0
            assert max(sizes) / min(sizes) <= 1.5, sizes

    def test_every_shard_owns_dataset_databases(self, bird_benchmark):
        # Over the generated dataset's actual db_ids, the default
        # 3-shard cluster leaves no worker idle.
        db_ids = sorted({e.db_id for e in bird_benchmark.dev})
        placement = HashRing(range(3)).assignments(db_ids)
        assert all(placement[shard] for shard in range(3)), {
            shard: len(keys) for shard, keys in placement.items()
        }

    def test_dataset_load_ratio_is_bounded(self, bird_benchmark):
        # Shard load weighted by dev-split question volume: with only
        # ten physical databases the shares are lumpy, but no shard of
        # three may own a grossly outsized fraction of the traffic.
        ring = HashRing(range(3))
        load = {shard: 0 for shard in range(3)}
        for example in bird_benchmark.dev:
            load[ring.lookup(example.db_id)] += 1
        assert all(load.values()), load
        assert max(load.values()) <= 0.75 * len(bird_benchmark.dev), load

    def test_more_vnodes_default_is_sane(self):
        assert DEFAULT_VNODES >= 64  # balance degrades sharply below this

    def test_assignments_lists_empty_nodes(self):
        ring = HashRing(range(4))
        placement = ring.assignments(["healthcare"])
        assert set(placement) == {0, 1, 2, 3}
        assert sum(len(keys) for keys in placement.values()) == 1
