"""ServingEngine + AdmissionController behaviour tests.

The admission tests drive the controller directly (no pipeline); the
engine tests wrap the session-scoped tiny pipeline.  Engines mutate the
pipeline they wrap (cache wrappers on extractor/library), so every engine
test builds its own pipeline.
"""

import threading

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import BudgetExceededError, CircuitOpenError
from repro.serving import AdmissionController, QueueFullError, ServingEngine


@pytest.fixture
def fresh_pipeline(tiny_benchmark):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=3))


class TestAdmissionController:
    def test_sheds_at_capacity_without_block(self):
        controller = AdmissionController(capacity=2)
        controller.admit()
        controller.admit()
        with pytest.raises(QueueFullError):
            controller.admit()
        assert controller.shed == 1
        assert controller.admitted == 2
        assert controller.submitted == 3

    def test_release_frees_a_slot(self):
        controller = AdmissionController(capacity=1)
        controller.admit()
        controller.release()
        controller.admit()  # no raise
        assert controller.admitted == 2

    def test_blocking_admit_waits_for_release(self):
        controller = AdmissionController(capacity=1)
        controller.admit()
        admitted = threading.Event()

        def late_admit():
            controller.admit(block=True)
            admitted.set()

        thread = threading.Thread(target=late_admit)
        thread.start()
        assert not admitted.wait(0.05)
        controller.release()
        assert admitted.wait(2.0)
        thread.join()

    def test_blocking_admit_times_out(self):
        controller = AdmissionController(capacity=1)
        controller.admit()
        with pytest.raises(QueueFullError):
            controller.admit(block=True, timeout=0.01)

    def test_open_breaker_rejects(self):
        breaker = CircuitBreaker(failure_threshold=1)
        controller = AdmissionController(capacity=4, breaker=breaker)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            controller.admit()
        assert controller.rejected_open == 1

    def test_budget_rejects_after_max_requests(self):
        controller = AdmissionController(capacity=4, max_requests=2)
        controller.admit()
        controller.admit()
        with pytest.raises(BudgetExceededError):
            controller.admit()
        assert controller.rejected_budget == 1

    def test_release_without_admit_raises(self):
        controller = AdmissionController(capacity=1)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_to_dict_shape(self):
        payload = AdmissionController(capacity=3).to_dict()
        assert payload["capacity"] == 3
        assert payload["breaker_state"] == "closed"


class TestServingEngine:
    def test_results_match_serial_pipeline(self, fresh_pipeline, tiny_benchmark):
        examples = tiny_benchmark.dev[:6]
        serial_pipeline = OpenSearchSQL(
            tiny_benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
        )
        expected = [serial_pipeline.answer(e) for e in examples]
        with ServingEngine(fresh_pipeline, workers=4, queue_capacity=8) as engine:
            results = engine.run(examples)
        # The vote's tie-break uses measured execution time (paper Eq. 3),
        # so the winning SQL *text* within a result-equivalent bucket may
        # vary with load; the execution result — what EX scores — must not.
        for example, got, want in zip(examples, results, expected):
            executor = serial_pipeline.executor(example.db_id)
            got_rows = sorted(map(str, executor.execute(got.final_sql).rows))
            want_rows = sorted(map(str, executor.execute(want.final_sql).rows))
            assert got_rows == want_rows, example.question_id

    def test_result_cache_hit_skips_pipeline(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        with ServingEngine(fresh_pipeline, workers=1) as engine:
            first = engine.answer(example)
            second = engine.answer(example)
            stats = engine.stats()
        assert second is first  # the cached object itself
        assert stats.result_hits == 1
        assert stats.cache_tiers["result"]["hits"] == 1
        assert stats.cache_tiers["result"]["misses"] == 1

    def test_normalized_question_shares_entry(self, fresh_pipeline, tiny_benchmark):
        from dataclasses import replace

        example = tiny_benchmark.dev[0]
        retyped = replace(
            example, question="  " + example.question.rstrip(" ?.") + "  ?"
        )
        with ServingEngine(fresh_pipeline, workers=1) as engine:
            engine.answer(example)
            engine.answer(retyped)
            assert engine.stats().result_hits == 1

    def test_invalidate_db_forces_recompute(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        with ServingEngine(fresh_pipeline, workers=1) as engine:
            engine.answer(example)
            dropped = engine.invalidate_db(example.db_id)
            assert dropped["result"] == 1
            engine.answer(example)
            stats = engine.stats()
        assert stats.result_hits == 0
        assert stats.cache_tiers["result"]["invalidations"] >= 1

    def test_invalidate_other_db_keeps_entry(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        with ServingEngine(fresh_pipeline, workers=1) as engine:
            engine.answer(example)
            dropped = engine.invalidate_db("some_other_db")
            assert dropped["result"] == 0
            engine.answer(example)
            assert engine.stats().result_hits == 1

    def test_open_loop_sheds_over_capacity(self, fresh_pipeline, tiny_benchmark):
        # 1 worker, capacity 1: burst-submitting the whole dev split must
        # shed most of it.
        examples = tiny_benchmark.dev[:6]
        with ServingEngine(
            fresh_pipeline, workers=1, queue_capacity=1
        ) as engine:
            results = engine.run(examples, block=False)
            stats = engine.stats()
        served = [r for r in results if r is not None]
        assert stats.shed >= 1
        assert stats.shed == len(examples) - len(served)
        assert stats.submitted == len(examples)

    def test_budget_rejections_counted(self, fresh_pipeline, tiny_benchmark):
        examples = tiny_benchmark.dev[:5]
        with ServingEngine(
            fresh_pipeline, workers=2, queue_capacity=8, max_requests=2
        ) as engine:
            results = engine.run(examples)
            stats = engine.stats()
        assert sum(1 for r in results if r is not None) == 2
        assert stats.rejected_budget == 3

    def test_breaker_opens_on_failures(self, tiny_benchmark):
        class ExplodingPipeline:
            def __init__(self, inner):
                self.inner = inner

            def answer(self, example):
                raise RuntimeError("boom")

            def __getattr__(self, name):
                return getattr(self.inner, name)

        inner = OpenSearchSQL(
            tiny_benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
        )
        breaker = CircuitBreaker(failure_threshold=2)
        # queue_capacity=1 paces submission behind execution, so the
        # breaker's state is settled before each admit decision.
        with ServingEngine(
            ExplodingPipeline(inner),
            workers=1,
            queue_capacity=1,
            extraction_cache_size=0,
            fewshot_cache_size=0,
            breaker=breaker,
        ) as engine:
            results = engine.run(tiny_benchmark.dev[:5])
            stats = engine.stats()
        assert all(r is None for r in results)
        # Exact admit counts depend on submit/worker interleaving (the
        # breaker check precedes the capacity wait), but the invariants
        # hold: the threshold was reached, the circuit opened, and every
        # request either failed or was rejected at the gate.
        assert stats.failed >= 2
        assert stats.rejected_open >= 1
        assert stats.failed + stats.rejected_open == 5
        assert stats.completed == 0
        assert stats.breaker_state == "open"

    def test_latency_and_throughput_accounting(self, fresh_pipeline, tiny_benchmark):
        examples = tiny_benchmark.dev[:4]
        with ServingEngine(fresh_pipeline, workers=2, queue_capacity=8) as engine:
            engine.run(examples)
            stats = engine.stats()
        assert stats.completed == 4
        assert stats.latency.count == 4
        # Simulated decode latency dominates: seconds, not microseconds.
        assert stats.latency.p50 > 1.0
        assert stats.makespan_seconds > 0
        assert stats.throughput_rps > 0
        payload = stats.to_dict()
        assert payload["completed"] == 4
        assert set(payload["cache_tiers"]) == {"result", "extraction", "fewshot"}
        assert "p95" in payload["latency"]

    def test_reset_stats_clears_accounting(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        with ServingEngine(fresh_pipeline, workers=1) as engine:
            engine.answer(example)
            engine.reset_stats()
            stats = engine.stats()
            assert stats.completed == 0
            assert stats.cache_tiers["result"]["misses"] == 0
            # The cache *contents* survive a stats reset: next call hits.
            engine.answer(example)
            assert engine.stats().result_hits == 1

    def test_disabled_tiers(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        with ServingEngine(
            fresh_pipeline,
            workers=1,
            result_cache_size=0,
            extraction_cache_size=0,
            fewshot_cache_size=0,
        ) as engine:
            first = engine.answer(example)
            second = engine.answer(example)
            stats = engine.stats()
        assert stats.result_hits == 0
        assert first is not second
        assert first.final_sql == second.final_sql  # still deterministic

    def test_ttl_expires_result_entries(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        engine = ServingEngine(fresh_pipeline, workers=1, result_cache_ttl=60.0)
        clock = {"now": 0.0}
        engine.result_cache._clock = lambda: clock["now"]
        with engine:
            engine.answer(example)
            clock["now"] = 30.0
            engine.answer(example)
            assert engine.stats().result_hits == 1
            clock["now"] = 120.0
            engine.answer(example)
            stats = engine.stats()
        assert stats.result_hits == 1
        assert stats.cache_tiers["result"]["expirations"] == 1

    def test_submit_after_shutdown_raises(self, fresh_pipeline, tiny_benchmark):
        engine = ServingEngine(fresh_pipeline, workers=1)
        engine.shutdown()
        with pytest.raises(RuntimeError):
            engine.submit(tiny_benchmark.dev[0])

    def test_rejects_zero_workers(self, fresh_pipeline):
        with pytest.raises(ValueError):
            ServingEngine(fresh_pipeline, workers=0)


class TestCachingFewShotLibrary:
    """The few-shot tier's key must normalize the question exactly like
    the result tier: retrieval embeds case-folded masked text, so retyped
    variants must share one cache entry."""

    class _CountingLibrary:
        def __init__(self):
            self.calls = 0

        def search(self, question, surfaces=(), k=5, db_id=None):
            self.calls += 1
            return [f"shot-for:{question}"]

        def add(self, entry):
            pass

    def test_retyped_question_hits_the_same_entry(self):
        from repro.caching import LRUCache
        from repro.serving import CachingFewShotLibrary

        inner = self._CountingLibrary()
        library = CachingFewShotLibrary(inner, LRUCache(16))
        first = library.search("How many  heads are there?", k=3)
        second = library.search("how many heads are there", k=3)
        assert second is first
        assert inner.calls == 1

    def test_different_k_surfaces_or_db_stay_distinct(self):
        from repro.caching import LRUCache
        from repro.serving import CachingFewShotLibrary

        inner = self._CountingLibrary()
        library = CachingFewShotLibrary(inner, LRUCache(16))
        library.search("q", k=3)
        library.search("q", k=5)
        library.search("q", k=3, surfaces=("x",))
        library.search("q", k=3, db_id="other")
        assert inner.calls == 4
