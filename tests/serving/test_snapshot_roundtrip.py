"""Health and metrics snapshots must survive a JSON round-trip.

The shard coordinator ships worker state across process boundaries as
plain JSON — never pickled live objects — and rehydrates it with
``HealthMonitor.from_snapshot`` / ``MetricsRegistry.from_snapshot``.
These tests push every snapshot through ``json.dumps``/``loads`` (so a
non-serializable field fails loudly, not just an unequal dict) and
require the rebuilt object to re-snapshot identically.
"""

import json

from repro.observability.metrics import MetricsRegistry
from repro.serving import HealthMonitor, ServingEngine


def roundtrip(payload):
    return json.loads(json.dumps(payload))


class TestHealthMonitorRoundTrip:
    def test_empty_monitor(self):
        monitor = HealthMonitor()
        snap = monitor.snapshot()
        assert HealthMonitor.from_snapshot(roundtrip(snap)).snapshot() == snap

    def test_components_all_grades(self):
        monitor = HealthMonitor(window=16, degraded_at=0.25, unhealthy_at=0.5)
        for _ in range(10):
            monitor.record("clean", True)
        for i in range(8):
            monitor.record("flaky", i % 3 != 0, detail="timeout")
        for _ in range(6):
            monitor.record("broken", False, detail="crash loop")
        snap = monitor.snapshot()
        rebuilt = HealthMonitor.from_snapshot(
            roundtrip(snap), window=16, degraded_at=0.25, unhealthy_at=0.5
        )
        assert rebuilt.snapshot() == snap
        assert rebuilt.component_grade("broken") == "unhealthy"

    def test_failure_counts_exact_at_max_default_window(self):
        # round(rate * window) must recover the exact count for every
        # possible count at the 4-decimal rounding snapshot applies.
        for failures in range(65):
            monitor = HealthMonitor(window=64)
            for i in range(64):
                monitor.record("c", i >= failures, detail="boom")
            snap = roundtrip(monitor.snapshot())
            rebuilt = HealthMonitor.from_snapshot(snap)
            assert rebuilt.snapshot() == snap, failures

    def test_probes_become_static_samplers(self):
        monitor = HealthMonitor()
        monitor.record("pipeline", True)
        monitor.register_probe("breaker", lambda: {"state": "closed"})
        monitor.register_probe("flag", lambda: True)
        snap = monitor.snapshot()
        assert HealthMonitor.from_snapshot(roundtrip(snap)).snapshot() == snap

    def test_detail_survives_after_window_slides_past_failure(self):
        monitor = HealthMonitor(window=4)
        monitor.record("c", False, detail="old crash")
        for _ in range(4):
            monitor.record("c", True)
        snap = monitor.snapshot()
        assert snap["components"]["c"]["last_failure"] == "old crash"
        assert HealthMonitor.from_snapshot(roundtrip(snap)).snapshot() == snap


class TestMetricsRegistryRoundTrip:
    def test_empty_registry(self):
        snap = MetricsRegistry().snapshot()
        assert MetricsRegistry.from_snapshot(roundtrip(snap)).snapshot() == snap

    def test_all_instrument_kinds(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_test_requests_total", "requests", labelnames=("status",)
        )
        requests.labels(status="ok").inc(7)
        requests.labels(status="failed").inc(2)
        registry.counter("repro_test_plain_total").inc(3)
        registry.gauge("repro_test_depth").set(4.5)
        seconds = registry.histogram(
            "repro_test_seconds", buckets=(0.5, 1.0, 5.0)
        )
        for value in (0.1, 0.7, 0.7, 3.0, 99.0):
            seconds.observe(value)
        snap = registry.snapshot()
        rebuilt = MetricsRegistry.from_snapshot(roundtrip(snap))
        assert rebuilt.snapshot() == snap

    def test_rebuilt_instruments_are_live(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labelnames=("tier",)).labels(
            tier="result"
        ).inc(5)
        rebuilt = MetricsRegistry.from_snapshot(roundtrip(registry.snapshot()))
        rebuilt.counter("repro_test_total", labelnames=("tier",)).labels(
            tier="result"
        ).inc()
        samples = rebuilt.snapshot()["metrics"]["repro_test_total"]["samples"]
        assert samples["tier=result"] == 6.0

    def test_multi_label_series(self):
        registry = MetricsRegistry()
        c = registry.counter(
            "repro_test_multi_total", labelnames=("stage", "status")
        )
        c.labels(stage="generate", status="ok").inc()
        c.labels(stage="refine", status="failed").inc(4)
        snap = registry.snapshot()
        assert MetricsRegistry.from_snapshot(roundtrip(snap)).snapshot() == snap

    def test_collectors_round_trip_flat(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "stats", lambda: {"nested": {"hits": 3}, "state": "closed"}
        )
        snap = registry.snapshot()
        assert MetricsRegistry.from_snapshot(roundtrip(snap)).snapshot() == snap


class TestEngineSnapshotsSerializable:
    def test_live_engine_health_and_metrics_are_json_ready(
        self, tiny_benchmark, tiny_pipeline
    ):
        # The exact payloads a shard worker ships at shutdown must be
        # JSON-serializable and rehydrate to an identical snapshot.
        metrics = MetricsRegistry()
        engine = ServingEngine(tiny_pipeline, workers=1, metrics=metrics)
        with engine:
            engine.run(tiny_benchmark.dev[:3])
            health_snap = engine.health.snapshot()
            metrics_snap = metrics.snapshot()
        rebuilt_health = HealthMonitor.from_snapshot(roundtrip(health_snap))
        assert rebuilt_health.snapshot() == health_snap
        rebuilt_metrics = MetricsRegistry.from_snapshot(roundtrip(metrics_snap))
        assert rebuilt_metrics.snapshot() == metrics_snap
