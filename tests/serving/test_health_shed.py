"""Health-graded admission shedding.

The HealthMonitor's windowed ``pipeline`` grade feeds the
AdmissionController: when recent pipeline calls are failing, a fraction
of *new* arrivals is shed up front (:class:`HealthShedError`) — load
drops before the circuit breaker has to trip, and the clients that are
admitted see a quieter instance.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import (
    DEFAULT_HEALTH_SHED,
    AdmissionController,
    HealthShedError,
    ServingEngine,
)


def controller(grade, probability):
    return AdmissionController(
        capacity=8,
        health_grade=lambda: grade,
        health_shed_probability=probability,
    )


class TestAdmissionShedding:
    def test_unhealthy_grade_sheds_at_probability_one(self):
        gate = controller("unhealthy", {"unhealthy": 1.0})
        with pytest.raises(HealthShedError):
            gate.admit()
        assert gate.shed_health == 1
        assert gate.to_dict()["shed_health"] == 1

    def test_healthy_grade_never_sheds(self):
        gate = controller("healthy", {"unhealthy": 1.0, "degraded": 1.0})
        for _ in range(20):
            gate.admit()
            gate.release()
        assert gate.shed_health == 0

    def test_unlisted_grade_defaults_to_no_shedding(self):
        gate = controller("degraded", {"unhealthy": 1.0})
        gate.admit()
        assert gate.shed_health == 0

    def test_partial_probability_sheds_a_fraction(self):
        gate = controller("degraded", {"degraded": 0.5})
        outcomes = []
        for _ in range(200):
            try:
                gate.admit()
            except HealthShedError:
                outcomes.append(True)
            else:
                outcomes.append(False)
                gate.release()
        shed = sum(outcomes)
        assert gate.shed_health == shed
        assert 60 <= shed <= 140  # seeded RNG, loose band around 100

    def test_shed_probabilities_are_validated(self):
        with pytest.raises(ValueError):
            controller("healthy", {"degraded": 1.5})
        with pytest.raises(ValueError):
            controller("healthy", {"degraded": -0.1})

    def test_default_policy_escalates_with_the_grade(self):
        assert 0.0 < DEFAULT_HEALTH_SHED["degraded"] < DEFAULT_HEALTH_SHED["unhealthy"] <= 1.0


class TestEngineShedding:
    def make_engine(self, tiny_benchmark, health_shed):
        pipeline = OpenSearchSQL(
            tiny_benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
        )
        return ServingEngine(pipeline, workers=1, health_shed=health_shed)

    def test_unhealthy_pipeline_grade_sheds_new_arrivals(self, tiny_benchmark):
        engine = self.make_engine(tiny_benchmark, {"unhealthy": 1.0})
        with engine:
            # a burst of pipeline failures pushes the windowed grade past
            # the unhealthy threshold before any new arrival is admitted
            for _ in range(8):
                engine.health.record("pipeline", False, detail="boom")
            with pytest.raises(HealthShedError):
                engine.submit(tiny_benchmark.dev[0])
            stats = engine.stats()
        assert stats.shed_health == 1
        assert stats.admitted == 0
        # the shed arrival's bulkhead slot was returned on the way out
        assert engine.bulkheads.inflight(tiny_benchmark.dev[0].db_id) == 0

    def test_shedding_is_off_by_default(self, tiny_benchmark):
        engine = self.make_engine(tiny_benchmark, None)
        with engine:
            for _ in range(8):
                engine.health.record("pipeline", False, detail="boom")
            result = engine.answer(tiny_benchmark.dev[0])
            stats = engine.stats()
        assert result is not None
        assert stats.shed_health == 0

    def test_recovered_grade_stops_shedding(self, tiny_benchmark):
        engine = self.make_engine(tiny_benchmark, {"unhealthy": 1.0})
        with engine:
            for _ in range(8):
                engine.health.record("pipeline", False, detail="boom")
            with pytest.raises(HealthShedError):
                engine.submit(tiny_benchmark.dev[0])
            # successes wash the failures out of the sliding window
            for _ in range(60):
                engine.health.record("pipeline", True)
            result = engine.answer(tiny_benchmark.dev[0])
        assert result is not None

    def test_shed_counts_in_run_accounting(self, tiny_benchmark):
        engine = self.make_engine(tiny_benchmark, {"unhealthy": 1.0})
        with engine:
            for _ in range(8):
                engine.health.record("pipeline", False, detail="boom")
            results = engine.run(tiny_benchmark.dev[:3], block=False)
            stats = engine.stats()
        assert results == [None, None, None]
        assert stats.shed_health == 3
        assert stats.submitted == 3
        assert stats.admitted == stats.completed + stats.failed
