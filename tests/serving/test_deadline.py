"""End-to-end deadline behaviour: the Deadline primitive, pipeline-stage
containment, refinement truncation, and the serving engine's accounting."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.extraction import ExtractionResult
from repro.core.pipeline import FALLBACK_SQL, OpenSearchSQL
from repro.execution.chaos import DbFaultPlan, FaultInjectingExecutor
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability.deadline import Deadline, DeadlineExceededError
from repro.reliability.degradation import DegradationKind
from repro.serving import ServingEngine


@pytest.fixture
def fresh_pipeline(tiny_benchmark):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=3))


class TestDeadline:
    def test_virtual_time_advances_by_charge(self):
        clock_now = [0.0]
        deadline = Deadline(10.0, clock=lambda: clock_now[0])
        assert not deadline.expired
        deadline.charge(4.0)
        assert deadline.elapsed_seconds == pytest.approx(4.0)
        assert deadline.remaining_seconds == pytest.approx(6.0)
        clock_now[0] = 7.0
        assert deadline.expired  # 4 charged + 7 wall > 10

    def test_meter_feeds_elapsed(self):
        model_seconds = [0.0]
        deadline = Deadline(5.0, clock=lambda: 0.0)
        deadline.attach_meter(lambda: model_seconds[0])
        assert not deadline.expired
        model_seconds[0] = 5.5
        assert deadline.expired
        assert deadline.remaining_seconds == 0.0

    def test_check_raises_typed_error(self):
        deadline = Deadline(1.0, clock=lambda: 0.0)
        deadline.check("generation")  # within budget: no raise
        deadline.charge(2.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("generation")
        assert excinfo.value.stage == "generation"
        assert excinfo.value.budget_seconds == 1.0

    def test_clamp_caps_suboperation_timeouts(self):
        deadline = Deadline(2.0, clock=lambda: 0.0)
        assert deadline.clamp(5.0) == pytest.approx(2.0)
        assert deadline.clamp(0.5) == pytest.approx(0.5)
        deadline.charge(3.0)
        assert deadline.clamp(5.0) == 0.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            Deadline(1.0).charge(-1.0)


class TestPipelineContainment:
    def test_expired_deadline_degrades_every_stage(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        deadline = Deadline(1e-6)
        result = fresh_pipeline.answer(example, deadline=deadline)
        assert result.deadline_exceeded
        stages = [
            e.stage
            for e in result.degradations
            if e.kind is DegradationKind.DEADLINE_EXCEEDED
        ]
        assert stages == ["extraction", "generation", "refinement"]
        assert result.final_sql == FALLBACK_SQL
        # contained, never raised: the result is a degraded answer
        assert result.cost.total_model_seconds == 0.0

    def test_mid_request_exhaustion_skips_later_stages(
        self, fresh_pipeline, tiny_benchmark
    ):
        # A small virtual budget lets extraction start, then its reported
        # model seconds exhaust the budget before generation.
        example = tiny_benchmark.dev[0]
        deadline = Deadline(0.05)
        result = fresh_pipeline.answer(example, deadline=deadline)
        assert result.deadline_exceeded
        kinds = {(e.kind, e.stage) for e in result.degradations}
        assert (DegradationKind.DEADLINE_EXCEEDED, "extraction") not in kinds
        assert (DegradationKind.DEADLINE_EXCEEDED, "generation") in kinds

    def test_generous_deadline_changes_nothing(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        clean = fresh_pipeline.answer(example)
        timed = fresh_pipeline.answer(example, deadline=Deadline(1e6))
        assert not timed.deadline_exceeded
        assert timed.final_sql == clean.final_sql


class TestRefinementTruncation:
    def test_slow_executions_truncate_candidate_loop(
        self, fresh_pipeline, tiny_benchmark
    ):
        example = tiny_benchmark.dev[0]
        pre = fresh_pipeline.preprocessed(example.db_id)
        extraction = ExtractionResult(schema=pre.schema, schema_prompt=pre.schema_prompt)
        executor = FaultInjectingExecutor(
            tiny_benchmark.database(example.db_id).executor(),
            DbFaultPlan(slow_query=1.0, slow_seconds=6.0),
        )
        deadline = Deadline(10.0)  # first execution charges 6s; second trips
        sqls = [example.gold_sql] * 3
        result = fresh_pipeline.refiner.run(
            example, sqls, pre, extraction, executor, deadline=deadline
        )
        assert result.truncated
        assert 1 <= len(result.candidates) < 3
        assert result.final_sql  # refined prefix still votes

    def test_answer_records_truncation_event(self, fresh_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        fresh_pipeline.set_executor_wrapper(
            lambda executor, db_id: FaultInjectingExecutor(
                executor, DbFaultPlan(slow_query=1.0, slow_seconds=6e5)
            )
        )
        try:
            result = fresh_pipeline.answer(example, deadline=Deadline(1e6))
        finally:
            fresh_pipeline.set_executor_wrapper(None)
        events = [
            e
            for e in result.degradations
            if e.kind is DegradationKind.DEADLINE_EXCEEDED and e.stage == "refinement"
        ]
        assert events and "candidates" in events[0].detail


class TestEngineDeadlines:
    def test_deadline_exceeded_counted_not_failed(self, fresh_pipeline, tiny_benchmark):
        engine = ServingEngine(fresh_pipeline, workers=2, deadline_seconds=1e-6)
        workload = tiny_benchmark.dev[:4]
        with engine:
            results = engine.run(workload)
            stats = engine.stats()
        assert all(r is not None for r in results)
        assert stats.failed == 0
        assert stats.deadline_exceeded == len(workload)
        assert stats.to_dict()["deadline_exceeded"] == len(workload)

    def test_degraded_answers_not_cached(self, fresh_pipeline, tiny_benchmark):
        engine = ServingEngine(fresh_pipeline, workers=1, deadline_seconds=1e-6)
        example = tiny_benchmark.dev[0]
        with engine:
            engine.answer(example)
            engine.answer(example)
            stats = engine.stats()
        assert stats.result_hits == 0  # degraded stand-in was not cached

    def test_no_deadline_no_accounting(self, fresh_pipeline, tiny_benchmark):
        engine = ServingEngine(fresh_pipeline, workers=1)
        with engine:
            engine.answer(tiny_benchmark.dev[0])
            stats = engine.stats()
        assert stats.deadline_exceeded == 0

    def test_rejects_nonpositive_deadline(self, fresh_pipeline):
        with pytest.raises(ValueError):
            ServingEngine(fresh_pipeline, deadline_seconds=0.0)
