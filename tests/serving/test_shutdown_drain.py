"""Graceful drain with in-flight hedged requests.

``shutdown(drain=True)`` must let every already-admitted request finish —
including the hedge secondaries those requests launch against a chaotic
database — while turning new arrivals away with the typed
:class:`DrainingError`.  After the drain returns, the hedge accounting has
to be *conserved*: every launched secondary resolved to a win or a loss,
and no counter moves again (a moving counter would mean a leaked
secondary still running after shutdown).
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.execution import DbFaultPlan, FaultInjectingExecutor
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import DrainingError, ServingEngine


def chaotic_pipeline(tiny_benchmark, rate=0.4, seed=11):
    """Pipeline whose database randomly throws transient faults — the
    trigger that makes the engine's hedged executor launch secondaries."""
    llm = SimulatedLLM(GPT_4O, seed=0)
    pipeline = OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=3))
    plan = DbFaultPlan.transient(rate)
    pipeline.set_executor_wrapper(
        lambda executor, db_id: FaultInjectingExecutor(executor, plan, seed=seed)
    )
    return pipeline


@pytest.fixture
def drain_workload(tiny_benchmark):
    dev = tiny_benchmark.dev
    return [dev[index % len(dev)] for index in range(6)]


class TestDrainWithHedgedRequests:
    def test_inflight_hedged_requests_complete(
        self, tiny_benchmark, drain_workload
    ):
        engine = ServingEngine(
            chaotic_pipeline(tiny_benchmark),
            workers=2,
            hedge_threshold=0.5,
        )
        futures = [
            engine.submit(example, block=True) for example in drain_workload
        ]
        # requests are still queued/in flight on the 2 workers here; drain
        # must wait them all out
        engine.shutdown(drain=True)
        assert all(future.done() for future in futures)
        results = [future.result() for future in futures]
        assert all(result is not None for result in results)
        assert engine.hedge_stats.launched > 0, "chaos never triggered a hedge"

    def test_hedge_stats_conserved_after_drain(
        self, tiny_benchmark, drain_workload
    ):
        engine = ServingEngine(
            chaotic_pipeline(tiny_benchmark),
            workers=2,
            hedge_threshold=0.5,
        )
        futures = [
            engine.submit(example, block=True) for example in drain_workload
        ]
        engine.shutdown(drain=True)
        for future in futures:
            future.result()
        stats = engine.hedge_stats
        # conservation: every win came from exactly one recovery channel,
        # and no secondary outran its primary's accounting
        assert stats.wins == stats.recovered_error + stats.recovered_slow
        assert stats.wins <= stats.launched
        assert stats.launched <= stats.calls
        # a leaked secondary would keep mutating the shared stats after
        # shutdown returned; two consecutive snapshots must agree
        first = dict(stats.to_dict())
        second = dict(stats.to_dict())
        assert first == second

    def test_post_drain_submissions_get_the_typed_rejection(
        self, tiny_benchmark, drain_workload
    ):
        engine = ServingEngine(
            chaotic_pipeline(tiny_benchmark),
            workers=2,
            hedge_threshold=0.5,
        )
        futures = [
            engine.submit(example, block=True) for example in drain_workload[:3]
        ]
        engine.shutdown(drain=True)
        with pytest.raises(DrainingError):
            engine.submit(drain_workload[0])
        # blocking closed-loop callers are rejected too, not parked forever
        with pytest.raises(DrainingError):
            engine.submit(drain_workload[0], block=True)
        assert all(future.result() is not None for future in futures)
        assert engine.stats().rejected_draining == 2

    def test_drain_serves_everything_it_admitted(
        self, tiny_benchmark, drain_workload
    ):
        engine = ServingEngine(
            chaotic_pipeline(tiny_benchmark),
            workers=2,
            hedge_threshold=0.5,
        )
        for example in drain_workload:
            engine.submit(example, block=True)
        engine.shutdown(drain=True)
        stats = engine.stats()
        assert stats.admitted == stats.completed + stats.failed
        assert stats.completed + stats.failed == len(drain_workload)
