"""HealthMonitor, graceful drain, and hedged execution tests."""

import threading

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.execution.chaos import DbFaultPlan, FaultInjectingExecutor
from repro.execution.executor import ExecutionOutcome, ExecutionStatus
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.reliability.deadline import Deadline
from repro.serving import (
    AdmissionController,
    DrainingError,
    HealthMonitor,
    HedgedExecutor,
    ServingEngine,
)


@pytest.fixture
def fresh_pipeline(tiny_benchmark):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=3))


class TestHealthMonitor:
    def test_all_success_is_healthy(self):
        monitor = HealthMonitor()
        for _ in range(10):
            monitor.record("pipeline", True)
        snapshot = monitor.snapshot()
        assert snapshot["status"] == "healthy"
        assert snapshot["components"]["pipeline"]["failure_rate"] == 0.0

    def test_grades_follow_failure_rate(self):
        monitor = HealthMonitor(window=10, degraded_at=0.2, unhealthy_at=0.5)
        for ok in [True] * 7 + [False] * 3:
            monitor.record("pipeline", ok, detail="boom")
        assert monitor.component_status("pipeline")["status"] == "degraded"
        for _ in range(3):
            monitor.record("pipeline", False)
        status = monitor.component_status("pipeline")
        assert status["status"] == "unhealthy"
        assert status["last_failure"] == "boom"

    def test_window_forgets_old_failures(self):
        monitor = HealthMonitor(window=4)
        for _ in range(4):
            monitor.record("db", False)
        assert monitor.component_status("db")["status"] == "unhealthy"
        for _ in range(4):
            monitor.record("db", True)
        assert monitor.component_status("db")["status"] == "healthy"

    def test_worst_component_sets_overall(self):
        monitor = HealthMonitor()
        monitor.record("a", True)
        monitor.record("b", False)
        assert monitor.snapshot()["status"] == "unhealthy"

    def test_probes_sampled_at_snapshot(self):
        monitor = HealthMonitor()
        monitor.register_probe("breaker", lambda: {"state": "closed"})
        snapshot = monitor.snapshot()
        assert snapshot["probes"]["breaker"] == {"state": "closed"}
        assert snapshot["status"] == "healthy"

    def test_raising_probe_is_unhealthy(self):
        monitor = HealthMonitor()
        monitor.register_probe("boom", lambda: 1 / 0)
        snapshot = monitor.snapshot()
        assert "ZeroDivisionError" in snapshot["probes"]["boom"]["error"]
        assert snapshot["status"] == "unhealthy"

    def test_falsy_scalar_probe_degrades(self):
        monitor = HealthMonitor()
        monitor.register_probe("ready", lambda: False)
        assert monitor.snapshot()["status"] == "degraded"


class TestDrain:
    def test_admission_close_rejects_new_requests(self):
        controller = AdmissionController(capacity=4)
        controller.admit()
        controller.close()
        with pytest.raises(DrainingError):
            controller.admit()
        assert controller.rejected_draining == 1
        assert controller.to_dict()["closed"] is True
        controller.release()  # in-flight work still releases normally

    def test_close_wakes_blocked_waiters(self):
        controller = AdmissionController(capacity=1)
        controller.admit()
        outcome = {}

        def waiter():
            try:
                controller.admit(block=True)
                outcome["result"] = "admitted"
            except DrainingError:
                outcome["result"] = "draining"

        thread = threading.Thread(target=waiter)
        thread.start()
        # let the waiter reach the condition wait, then close the gate
        import time

        time.sleep(0.05)
        controller.close()
        thread.join(timeout=2.0)
        assert outcome["result"] == "draining"

    def test_drain_finishes_inflight_and_rejects_new(
        self, fresh_pipeline, tiny_benchmark
    ):
        engine = ServingEngine(fresh_pipeline, workers=2)
        futures = [engine.submit(e, block=True) for e in tiny_benchmark.dev[:3]]
        engine.shutdown(drain=True)
        for future in futures:
            assert future.result().final_sql  # in-flight ran to completion
        with pytest.raises(DrainingError):
            engine.submit(tiny_benchmark.dev[0])
        stats = engine.stats()
        assert stats.completed == 3
        assert stats.rejected_draining == 1

    def test_plain_shutdown_contract_unchanged(self, fresh_pipeline, tiny_benchmark):
        engine = ServingEngine(fresh_pipeline, workers=1)
        engine.shutdown()
        with pytest.raises(RuntimeError):
            engine.submit(tiny_benchmark.dev[0])


class _ScriptedExecutor:
    """Attempt-aware fake: outcomes[attempt] per execution."""

    def __init__(self, outcomes):
        self.outcomes = outcomes
        self.calls = []

    def execute(self, sql, deadline=None, attempt=0):
        self.calls.append(attempt)
        return self.outcomes[min(attempt, len(self.outcomes) - 1)]


class _PlainExecutor:
    """No attempt parameter: the hedge must still work."""

    def __init__(self, outcome):
        self.outcome = outcome
        self.calls = 0

    def execute(self, sql, deadline=None):
        self.calls += 1
        return self.outcome


def ok(elapsed=0.1, rows=((1,),)):
    return ExecutionOutcome(
        status=ExecutionStatus.OK, rows=rows, columns=("v",), elapsed_seconds=elapsed
    )


def locked():
    return ExecutionOutcome(status=ExecutionStatus.LOCKED, error="database is locked")


class TestHedgedExecutor:
    def test_fast_success_not_hedged(self):
        inner = _ScriptedExecutor([ok(0.1)])
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        assert hedged.execute("SELECT 1").status is ExecutionStatus.OK
        assert inner.calls == [0]
        assert hedged.stats.launched == 0

    def test_transient_error_recovered(self):
        inner = _ScriptedExecutor([locked(), ok(0.1)])
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        outcome = hedged.execute("SELECT 1")
        assert outcome.status is ExecutionStatus.OK
        assert inner.calls == [0, 1]  # hedge used the attempt salt
        assert hedged.stats.recovered_error == 1
        assert hedged.stats.wins == 1

    def test_both_attempts_transient_keeps_primary(self):
        inner = _ScriptedExecutor([locked(), locked()])
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        assert hedged.execute("SELECT 1").status is ExecutionStatus.LOCKED
        assert hedged.stats.wins == 0

    def test_slow_primary_race_won_by_hedge(self):
        inner = _ScriptedExecutor([ok(10.0), ok(0.5)])
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        outcome = hedged.execute("SELECT 1")
        # race latency: hedge launched at the threshold, finished 0.5s later
        assert outcome.elapsed_seconds == pytest.approx(2.5)
        assert hedged.stats.recovered_slow == 1
        assert hedged.stats.primary_slow == 1

    def test_slow_primary_race_lost_keeps_primary(self):
        inner = _ScriptedExecutor([ok(2.5), ok(1.0)])
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        # hedge would land at 2.0 + 1.0 = 3.0 > 2.5: primary wins
        assert hedged.execute("SELECT 1").elapsed_seconds == pytest.approx(2.5)
        assert hedged.stats.wins == 0

    def test_expired_deadline_suppresses_hedge(self):
        inner = _ScriptedExecutor([locked(), ok(0.1)])
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        deadline = Deadline(1.0, clock=lambda: 0.0)
        deadline.charge(2.0)
        assert hedged.execute("SELECT 1", deadline).status is ExecutionStatus.LOCKED
        assert hedged.stats.suppressed_deadline == 1
        assert hedged.stats.launched == 0

    def test_plain_executor_without_attempt_still_hedges(self):
        inner = _PlainExecutor(locked())
        hedged = HedgedExecutor(inner, threshold_seconds=2.0)
        assert hedged.execute("SELECT 1").status is ExecutionStatus.LOCKED
        assert inner.calls == 2

    def test_recovers_injected_faults_end_to_end(self):
        import sqlite3

        def _open():
            conn = sqlite3.connect(":memory:", check_same_thread=False)
            conn.executescript("CREATE TABLE t (v INTEGER); INSERT INTO t VALUES (1);")
            return conn

        from repro.execution.executor import SQLExecutor

        chaos = FaultInjectingExecutor(
            SQLExecutor(_open(), reconnect=_open), DbFaultPlan(locked=0.5), seed=3
        )
        hedged = HedgedExecutor(chaos, threshold_seconds=2.0)
        statements = [f"SELECT v FROM t WHERE v <= {i}" for i in range(40)]
        failures = sum(
            1 for sql in statements if hedged.execute(sql).status.is_error
        )
        # unhedged, ~half would fail; the independent hedge draw clears
        # most of them (p(fail) drops from 0.5 to 0.25)
        assert hedged.stats.launched > 0
        assert hedged.stats.recovered_error > 0
        assert failures < 0.5 * len(statements)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            HedgedExecutor(_PlainExecutor(ok()), threshold_seconds=0.0)


class TestEngineHealthWiring:
    def test_engine_reports_health_and_hedge_stats(
        self, fresh_pipeline, tiny_benchmark
    ):
        engine = ServingEngine(fresh_pipeline, workers=2, hedge_threshold=2.0)
        with engine:
            engine.run(tiny_benchmark.dev[:3])
            stats = engine.stats()
        assert stats.health["status"] == "healthy"
        assert stats.health["components"]["pipeline"]["failure_rate"] == 0.0
        assert stats.health["probes"]["breaker"] == {"state": "closed"}
        assert "hedging" in stats.health["probes"]
        assert stats.hedge["calls"] > 0
        assert "hedging" in stats.format()
