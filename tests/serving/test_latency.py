"""LatencySummary / percentile / workload-generation unit tests."""

import pytest

from repro.serving.latency import LatencySummary, percentile
from repro.serving.workload import zipf_weights, zipf_workload


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_single_value(self):
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 99) == 7.5

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.total_seconds == 10.0
        assert summary.mean == 2.5
        assert summary.p50 == 2.0
        assert summary.max == 4.0

    def test_empty_is_zeroed(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.p99 == 0.0

    def test_to_dict_round_numbers(self):
        payload = LatencySummary.from_values([1.23456]).to_dict()
        assert payload["count"] == 1
        assert payload["p50"] == pytest.approx(1.2346, abs=1e-4)


class TestZipfWorkload:
    def test_weights_normalized_and_decreasing(self):
        weights = zipf_weights(10, skew=1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] > weights[i + 1] for i in range(9))

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(5, skew=0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_workload_deterministic_per_seed(self, tiny_benchmark):
        pool = tiny_benchmark.dev[:8]
        a = zipf_workload(pool, 30, seed=1)
        b = zipf_workload(pool, 30, seed=1)
        c = zipf_workload(pool, 30, seed=2)
        assert [e.question_id for e in a] == [e.question_id for e in b]
        assert [e.question_id for e in a] != [e.question_id for e in c]

    def test_workload_is_skewed(self, tiny_benchmark):
        pool = tiny_benchmark.dev[:8]
        load = zipf_workload(pool, 200, skew=1.2, seed=0)
        counts = {}
        for example in load:
            counts[example.question_id] = counts.get(example.question_id, 0) + 1
        top = max(counts.values())
        assert len(load) == 200
        # The hottest question dominates a uniform share (200/8 = 25).
        assert top > 2 * (200 / len(pool))

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            zipf_workload([], 10)
        with pytest.raises(ValueError):
            zipf_weights(0)
