"""ShardCoordinator integration: real spawned workers over a small
benchmark.

Every test here pays real process-spawn cost, so the suite uses the
five-database ``cluster-smoke`` profile (sub-second worker build) and
keeps workloads small.  The certification story:

* conservation — accept/commit accounting across shard segments shows
  every request served exactly once, kill or no kill;
* supervision — a SIGKILLed worker restarts (budget permitting) or its
  shard rebalances onto survivors; either way the run completes and the
  recovered merged report is byte-identical to an undisturbed
  single-process run of the same seed;
* typed sheds — with no restart budget and no surviving shard, requests
  fail with ShardUnavailableError instead of hanging.
"""

import json

import pytest

from repro.serving import (
    ClusterConfig,
    ServingEngine,
    ServingJournal,
    ShardCoordinator,
    ShardUnavailableError,
    ShardedJournalView,
    assemble_report,
    recover_run,
)
from repro.serving.cluster.config import (
    build_worker_pipeline,
    example_from_wire,
    example_to_wire,
    resolve_benchmark,
)
from repro.serving.workload import zipf_workload

CANDIDATES = 3


@pytest.fixture(scope="module")
def smoke_benchmark():
    return resolve_benchmark("cluster-smoke")


@pytest.fixture(scope="module")
def smoke_workload(smoke_benchmark):
    """16 requests over all five databases — spans multiple shards."""
    pool, seen = [], set()
    for example in smoke_benchmark.split("dev"):
        if example.db_id not in seen:
            seen.add(example.db_id)
            pool.append(example)
    return zipf_workload(pool, requests=16, skew=1.1, seed=7)


def cluster_config(tmp_path, **overrides):
    defaults = dict(
        shards=3,
        benchmark="cluster-smoke",
        candidates=CANDIDATES,
        journal_dir=str(tmp_path / "segments"),
        backoff_base=0.05,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def reference_doc(tmp_path, workload):
    """Deterministic report of an undisturbed single-process run."""
    config = cluster_config(tmp_path, shards=1,
                            journal_dir=str(tmp_path / "reference"))
    _, pipeline = build_worker_pipeline(config)
    journal = ServingJournal(tmp_path / "reference" / "single.jsonl")
    engine = ServingEngine(
        pipeline, workers=1, result_cache_size=512, journal=journal
    )
    with engine:
        engine.run(workload)
    _, clean = build_worker_pipeline(config)
    outcomes = recover_run(
        ServingJournal(tmp_path / "reference" / "single.jsonl"), clean, workload
    )
    report = assemble_report(outcomes, workload, clean)
    return json.dumps(report.deterministic_dict(), sort_keys=True)


def recovered_doc(config, workload):
    view = ShardedJournalView(config.journal_dir)
    _, clean = build_worker_pipeline(config)
    outcomes = recover_run(view, clean, workload)
    report = assemble_report(outcomes, workload, clean)
    return json.dumps(report.deterministic_dict(), sort_keys=True)


class TestWireCodec:
    def test_example_round_trips(self, smoke_benchmark):
        for example in smoke_benchmark.split("dev")[:10]:
            assert example_from_wire(
                json.loads(json.dumps(example_to_wire(example)))
            ) == example

    def test_config_round_trips(self, tmp_path):
        config = cluster_config(tmp_path, deadline_seconds=12.5,
                                header={"requests": 16})
        rebuilt = ClusterConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            cluster_config(tmp_path, shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(shards=2, journal_dir="")
        with pytest.raises(ValueError):
            cluster_config(tmp_path, restart_budget=-1)


class TestClusterServing:
    def test_undisturbed_run_conserves_and_matches_reference(
        self, tmp_path, smoke_workload
    ):
        config = cluster_config(tmp_path)
        with ShardCoordinator(config) as coordinator:
            results = coordinator.run(smoke_workload)
            stats = coordinator.stats()
        assert all(r is not None for r in results)
        assert stats["completed"] == len(smoke_workload)
        assert stats["deaths"] == 0

        view = ShardedJournalView(config.journal_dir)
        assert view.committed_seqs() == list(range(len(smoke_workload)))
        assert view.pending() == []
        # more than one shard actually served traffic
        active = [s for s, n in view.committed_by_shard().items() if n]
        assert len(active) >= 2

        # per-shard snapshots arrive shard-labelled and merge into one
        # registry view
        snapshots = coordinator.shard_snapshots()
        assert sorted(snapshots) == [0, 1, 2]
        for payload in snapshots.values():
            json.dumps(payload)  # everything shipped must be JSON-ready
            assert payload["journal"]["pending"] == 0
        merged = coordinator.merged_metrics().snapshot()
        assert any(key.startswith("shard1.") for key in merged["collected"])

        assert recovered_doc(config, smoke_workload) == reference_doc(
            tmp_path, smoke_workload
        )

    def test_sigkill_with_budget_restarts_and_matches_reference(
        self, tmp_path, smoke_workload
    ):
        config = cluster_config(tmp_path, restart_budget=1)
        killed = []

        def on_result(worker_id, results):
            if worker_id == 1 and results == 2 and not killed:
                killed.append(worker_id)
                coordinator.kill_worker(worker_id)

        coordinator = ShardCoordinator(config, on_result=on_result)
        with coordinator:
            results = coordinator.run(smoke_workload)
            stats = coordinator.stats()
        assert killed == [1]
        assert stats["deaths"] == 1
        assert stats["restarts"] == 1
        assert stats["rebalances"] == 0
        assert all(r is not None for r in results)

        view = ShardedJournalView(config.journal_dir)  # raises on double-serve
        assert view.committed_seqs() == list(range(len(smoke_workload)))
        assert recovered_doc(config, smoke_workload) == reference_doc(
            tmp_path, smoke_workload
        )

    def test_sigkill_without_budget_rebalances_and_matches_reference(
        self, tmp_path, smoke_workload
    ):
        config = cluster_config(tmp_path, restart_budget=0)
        killed = []

        def on_result(worker_id, results):
            if worker_id == 1 and results == 2 and not killed:
                killed.append(worker_id)
                coordinator.kill_worker(worker_id)

        coordinator = ShardCoordinator(config, on_result=on_result)
        with coordinator:
            results = coordinator.run(smoke_workload)
            stats = coordinator.stats()
        assert killed == [1]
        assert stats["deaths"] == 1
        assert stats["restarts"] == 0
        assert stats["rebalances"] == 1
        assert stats["reroutes"] > 0
        assert 1 not in coordinator.ring
        assert all(r is not None for r in results)

        view = ShardedJournalView(config.journal_dir)
        assert view.committed_seqs() == list(range(len(smoke_workload)))
        # the dead shard committed some work pre-kill, survivors the rest
        by_shard = view.committed_by_shard()
        assert by_shard[1] >= 1
        assert sum(by_shard.values()) == len(smoke_workload)
        assert recovered_doc(config, smoke_workload) == reference_doc(
            tmp_path, smoke_workload
        )

    def test_budget_exhaustion_sheds_typed_instead_of_hanging(
        self, tmp_path, smoke_workload
    ):
        config = cluster_config(
            tmp_path, shards=1, restart_budget=0, request_timeout=60.0
        )
        killed = []

        def on_result(worker_id, results):
            if results == 2 and not killed:
                killed.append(worker_id)
                coordinator.kill_worker(worker_id)

        coordinator = ShardCoordinator(config, on_result=on_result)
        coordinator.start()
        futures = [
            coordinator.submit(example, seq=seq)
            for seq, example in enumerate(smoke_workload)
        ]
        served = sheds = 0
        for future in futures:
            try:
                future.result(timeout=60)
                served += 1
            except ShardUnavailableError:
                sheds += 1
        stats = coordinator.stats()
        coordinator.shutdown()
        assert served >= 1
        assert sheds >= 1
        assert served + sheds == len(smoke_workload)
        assert stats["shed_unavailable"] == sheds
        assert len(coordinator.ring) == 0
        # health remembers why: the worker's sliding window saw the death
        assert coordinator.health.component_grade("worker-0") != "healthy"

        # recovery finishes what the sheds dropped, byte-identically
        assert recovered_doc(config, smoke_workload) == reference_doc(
            tmp_path, smoke_workload
        )

    def test_storage_brownout_degrades_worker_without_killing_it(
        self, tmp_path, smoke_workload
    ):
        # Every worker's journal segment hits ENOSPC on its third append.
        # The cluster must treat that as a brownout — serve the full
        # workload un-journaled and report the workers storage-degraded —
        # not as a death: no restarts, no rebalances, no shed requests.
        config = cluster_config(tmp_path, storage={"enospc_after": 2})
        with ShardCoordinator(config) as coordinator:
            results = coordinator.run(smoke_workload)
            stats = coordinator.stats()
        assert all(r is not None for r in results)
        assert stats["completed"] == len(smoke_workload)
        assert stats["deaths"] == 0
        assert stats["restarts"] == 0
        assert stats["storage_degraded"] >= 1
        assert "storage-degraded" in stats.format()
        workers = stats["workers"]
        assert any(w["storage_degraded"] for w in workers.values())

    def test_deadline_propagates_across_process_boundary(
        self, tmp_path, smoke_benchmark
    ):
        # A sub-virtual-second budget cannot cover a pipeline answer, so
        # every served result must come back deadline-degraded — which
        # can only happen if the coordinator forwarded the budget to the
        # worker's engine.
        pool = smoke_benchmark.split("dev")[:2]
        config = cluster_config(tmp_path, shards=1, deadline_seconds=0.25)
        with ShardCoordinator(config) as coordinator:
            results = coordinator.run(pool)
        assert all(r is not None for r in results)
        degraded = [
            event
            for record in results
            for event in record["result"]["degradations"]
        ]
        assert degraded, "expected deadline degradation events"
        assert any("DEADLINE" in e["kind"].upper() for e in degraded)


class TestLivedataCluster:
    def test_invalidate_broadcast_reaches_every_shard(
        self, tmp_path, smoke_benchmark
    ):
        """A coordinator-observed mutation fans out: every live worker
        adopts the broadcast epoch (monotone), drops its caches, acks —
        and stamps every later commit for that database with the new
        ``schema_epoch``.  Spawn-time epochs come from the config
        snapshot, so a resumed cluster never restarts its stamps at 0."""
        import time

        config = cluster_config(
            tmp_path, shards=2, livedata=True, schema_epochs={"hockey": 2}
        )
        by_db = {}
        for example in smoke_benchmark.split("dev"):
            by_db.setdefault(example.db_id, []).append(example)
        workload = by_db["healthcare"][:2] + by_db["hockey"][:2]
        with ShardCoordinator(config) as coordinator:
            first = [f.result(timeout=60) for f in map(coordinator.submit, workload)]
            assert all(r is not None for r in first)
            sent = coordinator.broadcast_invalidate("hockey", epoch=3)
            assert sent == 2
            deadline = time.time() + 10
            while coordinator.invalidations_acked() < sent:
                assert time.time() < deadline, "invalidation acks never arrived"
                time.sleep(0.02)
            second = [f.result(timeout=60) for f in map(coordinator.submit, workload)]
            assert all(r is not None for r in second)
            stats = coordinator.stats()
        assert stats["invalidations_broadcast"] == 1
        assert stats["invalidations_acked"] == 2
        assert stats["completed"] == 2 * len(workload)
        # per-shard journals: headers carry the livedata snapshot; hockey
        # commits moved from the spawn epoch to the broadcast epoch while
        # healthcare never left 0
        stamps = {}
        headers = []
        segments = sorted((tmp_path / "segments").glob("journal-shard-*.jsonl"))
        assert len(segments) == 2
        for segment in segments:
            seq_to_db = {}
            for line in segment.read_text().splitlines():
                record = json.loads(line)
                if record.get("type") == "header":
                    headers.append(record.get("config", {}))
                elif record.get("type") == "accepted":
                    seq_to_db[record["seq"]] = record.get("db_id")
                elif record.get("type") == "committed":
                    db_id = seq_to_db.get(record["seq"])
                    stamps.setdefault(db_id, set()).add(
                        record.get("schema_epoch")
                    )
        for header in headers:
            assert header.get("livedata") is True
            assert header.get("schema_epochs") == {"hockey": 2}
        assert stamps.get("healthcare") == {0}
        assert stamps.get("hockey") == {2, 3}
