"""BulkheadRegistry: per-db bounds, per-db breakers, poison-pill quarantine."""

import threading

import pytest

from repro.serving import (
    BulkheadFullError,
    BulkheadRegistry,
    DbCircuitOpenError,
    QuarantinedError,
)

KEY_A = ("db_a", "what is x")
KEY_B = ("db_a", "what is y")


class TestInflightBound:
    def test_rejects_when_full_without_block(self):
        registry = BulkheadRegistry(max_inflight=2)
        registry.acquire("db_a", KEY_A)
        registry.acquire("db_a", KEY_B)
        with pytest.raises(BulkheadFullError):
            registry.acquire("db_a", ("db_a", "z"))
        assert registry.to_dict()["databases"]["db_a"]["rejected_full"] == 1

    def test_other_databases_keep_flowing(self):
        registry = BulkheadRegistry(max_inflight=1)
        registry.acquire("db_a", KEY_A)
        registry.acquire("db_b", ("db_b", "q"))  # no raise

    def test_release_frees_the_slot(self):
        registry = BulkheadRegistry(max_inflight=1)
        registry.acquire("db_a", KEY_A)
        registry.release("db_a")
        registry.acquire("db_a", KEY_B)  # no raise

    def test_blocking_acquire_waits_for_release(self):
        registry = BulkheadRegistry(max_inflight=1)
        registry.acquire("db_a", KEY_A)
        acquired = threading.Event()

        def late_acquire():
            registry.acquire("db_a", KEY_B, block=True)
            acquired.set()

        thread = threading.Thread(target=late_acquire)
        thread.start()
        assert not acquired.wait(0.05)
        registry.release("db_a")
        assert acquired.wait(2.0)
        thread.join()

    def test_release_without_acquire_raises(self):
        registry = BulkheadRegistry()
        with pytest.raises(RuntimeError):
            registry.release("db_a")

    def test_unbounded_by_default(self):
        registry = BulkheadRegistry()
        for index in range(100):
            registry.acquire("db_a", ("db_a", str(index)))
        assert registry.inflight("db_a") == 100

    def test_peak_inflight_tracked(self):
        registry = BulkheadRegistry(max_inflight=3)
        registry.acquire("db_a", KEY_A)
        registry.acquire("db_a", KEY_B)
        registry.release("db_a")
        assert registry.to_dict()["databases"]["db_a"]["peak_inflight"] == 2

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            BulkheadRegistry(max_inflight=0)
        with pytest.raises(ValueError):
            BulkheadRegistry(quarantine_threshold=-1)


class TestQuarantine:
    def test_key_quarantined_after_threshold_consecutive_crashes(self):
        registry = BulkheadRegistry(quarantine_threshold=3)
        assert not registry.record_crash("db_a", KEY_A)
        assert not registry.record_crash("db_a", KEY_A)
        assert registry.record_crash("db_a", KEY_A)  # newly quarantined
        with pytest.raises(QuarantinedError):
            registry.acquire("db_a", KEY_A)
        assert registry.quarantined() == {KEY_A: 3}

    def test_success_resets_the_strike_count(self):
        registry = BulkheadRegistry(quarantine_threshold=2)
        registry.record_crash("db_a", KEY_A)
        registry.record_success("db_a", KEY_A)
        assert not registry.record_crash("db_a", KEY_A)
        assert registry.quarantined() == {}

    def test_other_keys_unaffected(self):
        registry = BulkheadRegistry(quarantine_threshold=1)
        registry.record_crash("db_a", KEY_A)
        registry.acquire("db_a", KEY_B)  # no raise

    def test_unquarantine_lifts_the_block(self):
        registry = BulkheadRegistry(quarantine_threshold=1)
        registry.record_crash("db_a", KEY_A)
        assert registry.unquarantine(KEY_A)
        registry.acquire("db_a", KEY_A)  # no raise
        assert not registry.unquarantine(KEY_A)

    def test_threshold_zero_disables_quarantine(self):
        registry = BulkheadRegistry(
            quarantine_threshold=0, breaker_failure_threshold=100
        )
        for _ in range(10):
            assert not registry.record_crash("db_a", KEY_A)
        registry.acquire("db_a", KEY_A)  # no raise

    def test_quarantined_key_never_takes_a_slot(self):
        registry = BulkheadRegistry(max_inflight=5, quarantine_threshold=1)
        registry.record_crash("db_a", KEY_A)
        for _ in range(20):
            with pytest.raises(QuarantinedError):
                registry.acquire("db_a", KEY_A, block=True)
        assert registry.inflight("db_a") == 0


class TestPerDbBreaker:
    def test_db_breaker_opens_independently(self):
        registry = BulkheadRegistry(breaker_failure_threshold=2)
        registry.record_crash("db_a", KEY_A)
        registry.record_crash("db_a", KEY_B)
        with pytest.raises(DbCircuitOpenError):
            registry.acquire("db_a", ("db_a", "z"))
        # the sibling database's breaker is untouched
        registry.acquire("db_b", ("db_b", "q"))
        report = registry.to_dict()
        assert report["databases"]["db_a"]["breaker_state"] == "open"
        assert report["databases"]["db_b"]["breaker_state"] == "closed"

    def test_db_breaker_open_rejects_even_blocking_callers(self):
        registry = BulkheadRegistry(breaker_failure_threshold=1)
        registry.record_crash("db_a", KEY_A)
        with pytest.raises(DbCircuitOpenError):
            registry.acquire("db_a", KEY_B, block=True)


class TestReporting:
    def test_to_dict_roster_and_totals(self):
        registry = BulkheadRegistry(max_inflight=1, quarantine_threshold=1)
        registry.acquire("db_a", KEY_A)
        with pytest.raises(BulkheadFullError):
            registry.acquire("db_a", KEY_B)
        registry.record_crash("db_a", KEY_A)
        with pytest.raises(QuarantinedError):
            registry.acquire("db_a", KEY_A)
        report = registry.to_dict()
        assert report["rejected_full"] == 1
        assert report["rejected_quarantined"] == 1
        assert report["quarantined"] == {"db_a::what is x": 1}
