"""LRUCache / GoldResultCache / normalize_question unit tests."""

import threading

import pytest

from repro.caching import CacheStats, GoldResultCache, LRUCache, normalize_question


class FakeClock:
    """Injectable clock so TTL expiry is tested without sleeping."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestNormalizeQuestion:
    def test_collapses_whitespace_case_and_punctuation(self):
        assert (
            normalize_question("  How many   heads ?")
            == normalize_question("how many heads")
        )

    def test_distinct_questions_stay_distinct(self):
        assert normalize_question("how many heads") != normalize_question(
            "how many tails"
        )


class TestLRUCache:
    def test_put_get_round_trip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("ghost") is None
        assert cache.get("ghost", 42) == 42

    def test_eviction_is_lru_ordered(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes, so b evicts next
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_ttl_expiry_counts_as_miss(self):
        clock = FakeClock()
        cache = LRUCache(maxsize=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.0)
        assert cache.get("a") == 1
        clock.advance(2.0)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert "a" not in cache

    def test_invalidate_predicate_counts(self):
        cache = LRUCache(maxsize=8)
        for i in range(4):
            cache.put(("db1", i) if i % 2 else ("db2", i), i)
        dropped = cache.invalidate(lambda key: key[0] == "db1")
        assert dropped == 2
        assert cache.stats.invalidations == 2
        assert len(cache) == 2

    def test_invalidate_db_matches_tuple_prefix(self):
        cache = LRUCache(maxsize=8)
        cache.put(("california_schools", "q1"), "x")
        cache.put(("hockey", "q2"), "y")
        cache.put("plain-key", "z")
        assert cache.invalidate_db("california_schools") == 1
        assert ("hockey", "q2") in cache
        assert "plain-key" in cache

    def test_clear_keeps_lifetime_stats(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.stats.invalidations == 1
        cache.reset_stats()
        assert cache.stats.hits == 0

    def test_disabled_tier_drops_everything(self):
        cache = LRUCache(maxsize=0)
        assert not cache.enabled
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_get_or_compute_computes_once(self):
        cache = LRUCache(maxsize=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        assert cache.stats.hits == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)
        with pytest.raises(ValueError):
            LRUCache(ttl=0)

    def test_stats_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert stats.to_dict()["hit_rate"] == 0.75

    def test_thread_safety_under_contention(self):
        cache = LRUCache(maxsize=32)

        def worker(tag):
            for i in range(200):
                cache.put((tag, i % 40), i)
                cache.get((tag, (i + 7) % 40))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 32
        assert cache.stats.lookups == 4 * 200


class CountingExecutor:
    """Executor double counting gold executions."""

    def __init__(self):
        self.calls = 0

    def execute(self, sql):
        self.calls += 1
        return f"rows-for:{sql}"


class FakeExample:
    def __init__(self, question_id, gold_sql="SELECT 1"):
        self.question_id = question_id
        self.gold_sql = gold_sql


class TestGoldResultCache:
    def test_gold_executes_once_per_question(self):
        gold = GoldResultCache()
        executor = CountingExecutor()
        example = FakeExample("q1")
        first = gold.outcome(example, executor)
        second = gold.outcome(example, executor)
        assert first == second == "rows-for:SELECT 1"
        assert executor.calls == 1
        assert gold.stats.hits == 1

    def test_distinct_questions_execute_separately(self):
        gold = GoldResultCache()
        executor = CountingExecutor()
        gold.outcome(FakeExample("q1", "SELECT 1"), executor)
        gold.outcome(FakeExample("q2", "SELECT 2"), executor)
        assert executor.calls == 2
        assert len(gold) == 2

    def test_racing_workers_share_one_execution(self):
        gold = GoldResultCache()
        executor = CountingExecutor()
        example = FakeExample("hot")
        results = []

        def worker():
            results.append(gold.outcome(example, executor))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert executor.calls == 1
        assert len(set(results)) == 1
