"""ShardedJournalView: merged per-shard segments behind the journal API.

These tests never spawn a process — they write segments directly (the
way shard workers would) and certify that the merged view discovers
them, resolves reads across shards, ring-routes fresh writes, detects
double-serves, and that ``recover_run`` over the merged view produces a
report byte-identical to recovery over an equivalent single journal.
"""

import json

import pytest

from repro.serving import (
    DoubleServeError,
    ServingEngine,
    ServingJournal,
    ShardedJournalView,
    assemble_report,
    discover_segments,
    recover_run,
)
from repro.serving.cluster.config import segment_name
from repro.serving.workload import zipf_workload


def segment(tmp_path, shard, header=None):
    journal = ServingJournal(tmp_path / segment_name(shard))
    journal.write_header(
        {"shard": shard, "ring_vnodes": 128, **(header or {})}
    )
    return journal


class TestDiscovery:
    def test_finds_only_segment_files(self, tmp_path):
        segment(tmp_path, 0)
        segment(tmp_path, 2)
        (tmp_path / "journal-shard-x.jsonl").write_text("{}\n")
        (tmp_path / "other.jsonl").write_text("{}\n")
        found = discover_segments(tmp_path)
        assert sorted(found) == [0, 2]
        assert found[2].name == segment_name(2)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedJournalView(tmp_path)


class TestMergedView:
    def test_reads_resolve_across_shards(self, tmp_path, tiny_benchmark):
        examples = tiny_benchmark.dev[:4]
        left, right = segment(tmp_path, 0), segment(tmp_path, 1)
        left.accept(examples[0], seq=0)
        left.commit(0, "failed", error="x")
        right.accept(examples[1], seq=1)
        view = ShardedJournalView(tmp_path)
        assert len(view) == 1
        assert view.committed(0)["error"] == "x"
        assert view.committed(1) is None
        assert view.pending() == [1]
        assert view.committed_by_shard() == {0: 1, 1: 0}

    def test_config_merges_and_drops_shard_key(self, tmp_path):
        segment(tmp_path, 0, header={"requests": 9})
        view = ShardedJournalView(tmp_path)
        assert view.config["requests"] == 9
        assert "shard" not in view.config

    def test_double_commit_across_shards_raises(self, tmp_path, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        for shard in (0, 1):
            journal = segment(tmp_path, shard)
            journal.accept(example, seq=5)
            journal.commit(5, "failed", error="dup")
        with pytest.raises(DoubleServeError) as excinfo:
            ShardedJournalView(tmp_path)
        assert excinfo.value.seq == 5

    def test_writes_route_by_ring_and_stick_to_accepting_shard(
        self, tmp_path, tiny_benchmark
    ):
        segment(tmp_path, 0)
        segment(tmp_path, 1)
        view = ShardedJournalView(tmp_path)
        example = tiny_benchmark.dev[0]
        owner = view.ring.lookup(example.db_id)
        seq = view.accept(example, seq=3)
        assert seq == 3
        view.commit(3, "failed", error="routed")
        reloaded = ShardedJournalView(tmp_path)
        assert reloaded.committed(3)["error"] == "routed"
        assert reloaded.committed_by_shard()[owner] == 1

    def test_reaccept_of_known_seq_keeps_its_segment(
        self, tmp_path, tiny_benchmark
    ):
        examples = tiny_benchmark.dev[:2]
        left = segment(tmp_path, 0)
        left.accept(examples[0], seq=0)  # accepted, never committed
        segment(tmp_path, 1)
        view = ShardedJournalView(tmp_path)
        view.accept(examples[0], seq=0)
        view.commit(0, "failed", error="rerun")
        # the whole history stays in shard 0's segment regardless of
        # where the ring would place the db today
        assert ServingJournal(tmp_path / segment_name(0)).committed(0) is not None

    def test_commit_without_accept_raises(self, tmp_path):
        segment(tmp_path, 0)
        view = ShardedJournalView(tmp_path)
        with pytest.raises(KeyError):
            view.commit(9, "failed", error="never accepted")


class TestDamagedSegments:
    """Storage damage surfaces through discovery with v2 semantics:
    torn tails heal silently, interior damage raises typed."""

    def test_torn_segment_tail_is_pending_again(
        self, tmp_path, tiny_benchmark
    ):
        examples = tiny_benchmark.dev[:2]
        left = segment(tmp_path, 0)
        left.accept(examples[0], seq=0)
        left.commit(0, "failed", error="x")
        segment(tmp_path, 1).accept(examples[1], seq=1)
        path = tmp_path / segment_name(0)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:20])
        view = ShardedJournalView(tmp_path)
        assert view.pending() == [0, 1]  # the torn commit re-runs
        # and the tear was truncated: a reload sees a clean segment
        from repro.storage import scan_file

        assert scan_file(path).issues == []

    def test_corrupt_segment_middle_raises_typed_with_segment_name(
        self, tmp_path, tiny_benchmark
    ):
        from repro.serving import JournalCorruptionError

        examples = tiny_benchmark.dev[:2]
        left = segment(tmp_path, 0)
        left.accept(examples[0], seq=0)
        left.commit(0, "failed", error="x")
        segment(tmp_path, 1)
        path = tmp_path / segment_name(0)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:15] + "##" + lines[1][17:]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError) as info:
            ShardedJournalView(tmp_path)
        assert segment_name(0) in str(info.value)
        assert "fsck" in str(info.value)

    def test_corrupt_middle_of_one_segment_spares_no_merge(
        self, tmp_path, tiny_benchmark
    ):
        # even when the OTHER segments are pristine, the merged view must
        # refuse: a silently-skipped interior commit could double-serve
        # that seq on a healthy shard later
        from repro.serving import JournalCorruptionError

        examples = tiny_benchmark.dev[:3]
        for shard in (0, 1, 2):
            journal = segment(tmp_path, shard)
            journal.accept(examples[shard], seq=shard)
            journal.commit(shard, "failed", error=str(shard))
            journal.accept(examples[shard], seq=shard + 10)
        path = tmp_path / segment_name(1)
        lines = path.read_text().splitlines()
        lines[2] = "garbage-not-json"  # the commit — interior, not tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError):
            ShardedJournalView(tmp_path)

    def test_view_seal_seals_every_segment(self, tmp_path, tiny_benchmark):
        from repro.storage import scan_file

        segment(tmp_path, 0)
        segment(tmp_path, 1)
        view = ShardedJournalView(tmp_path)
        view.seal()
        for shard in (0, 1):
            assert scan_file(tmp_path / segment_name(shard)).sealed

    def test_view_forwards_opener_to_segments(self, tmp_path, tiny_benchmark):
        from repro.storage import FaultyStorage, StorageFaultPlan

        example = tiny_benchmark.dev[0]
        left = segment(tmp_path, 0)
        left.accept(example, seq=0)
        storage = FaultyStorage(StorageFaultPlan.none())
        view = ShardedJournalView(tmp_path, opener=storage.opener)
        view.commit(0, "failed", error="through-the-opener")
        assert storage.stats_dict()["writes"] == 1


class TestMergedRecovery:
    def test_sharded_recovery_matches_single_journal_recovery(
        self, tmp_path, tiny_benchmark, tiny_pipeline
    ):
        pool = tiny_benchmark.dev[:5]
        workload = zipf_workload(pool, requests=9, skew=1.1, seed=2)

        # Reference: one engine, one journal, run to completion.
        single = ServingJournal(tmp_path / "single.jsonl")
        engine = ServingEngine(
            tiny_pipeline, workers=1, result_cache_size=512, journal=single
        )
        with engine:
            engine.run(workload)
        ref_outcomes = recover_run(
            ServingJournal(tmp_path / "single.jsonl"), tiny_pipeline, workload
        )
        ref = assemble_report(ref_outcomes, workload, tiny_pipeline)
        ref_doc = json.dumps(ref.deterministic_dict(), sort_keys=True)

        # Sharded: split the same committed history across two segments
        # by ring ownership, with a tail of uncommitted requests.
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        shards = {
            shard: segment(shard_dir, shard, header={"requests": 9})
            for shard in (0, 1)
        }
        from repro.serving import HashRing

        ring = HashRing([0, 1])
        for seq, example in enumerate(workload):
            journal = shards[ring.lookup(example.db_id)]
            journal.accept(example, seq=seq)
            if seq < 6:  # the "crash" leaves the last three uncommitted
                record = single.committed(seq)
                status = record.get("status", "ok")
                result, _ = ServingJournal.decode_result(record)
                if status == "ok":
                    journal.commit(seq, "ok", result=result)
                elif status == "cached":
                    journal.commit(seq, "cached")
                else:
                    journal.commit(seq, "failed", error=record.get("error"))

        view = ShardedJournalView(shard_dir)
        assert view.pending() == [6, 7, 8]
        outcomes = recover_run(view, tiny_pipeline, workload)
        report = assemble_report(outcomes, workload, tiny_pipeline)
        doc = json.dumps(report.deterministic_dict(), sort_keys=True)
        assert doc == ref_doc

        # Idempotence: a second recovery re-runs nothing and matches.
        again = ShardedJournalView(shard_dir)
        assert again.pending() == []
        outcomes2 = recover_run(again, tiny_pipeline, workload)
        report2 = assemble_report(outcomes2, workload, tiny_pipeline)
        assert json.dumps(report2.deterministic_dict(), sort_keys=True) == ref_doc
