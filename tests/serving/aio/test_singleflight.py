"""SingleFlight registry: leader election, coalescing, invalidation."""

from repro.serving.aio import SingleFlight


def make(counter=[0]):
    """A registry with a loop-free future factory (unit tests only)."""

    def factory():
        counter[0] += 1
        return object()

    return SingleFlight(future_factory=factory)


class TestLeaderElection:
    def test_first_caller_leads(self):
        sf = make()
        flight, leader = sf.begin(("db", "q"))
        assert leader
        assert flight.key == ("db", "q")
        assert flight.followers == 0
        assert sf.inflight() == 1

    def test_repeat_key_follows_same_flight(self):
        sf = make()
        flight, _ = sf.begin(("db", "q"))
        again, leader = sf.begin(("db", "q"))
        assert not leader
        assert again is flight
        assert flight.followers == 1
        assert sf.coalesced_total == 1

    def test_distinct_keys_lead_independently(self):
        sf = make()
        _, lead_a = sf.begin(("db", "a"))
        _, lead_b = sf.begin(("db", "b"))
        assert lead_a and lead_b
        assert sf.inflight() == 2
        assert sf.coalesced_total == 0

    def test_tier_joins_the_key(self):
        """Same question on different routing tiers must never coalesce."""
        sf = make()
        _, lead_fast = sf.begin(("db", "q", "fast"))
        _, lead_full = sf.begin(("db", "q", "full"))
        assert lead_fast and lead_full


class TestFinish:
    def test_finish_detaches_so_new_arrivals_lead(self):
        sf = make()
        flight, _ = sf.begin(("db", "q"))
        sf.finish(flight)
        assert sf.inflight() == 0
        fresh, leader = sf.begin(("db", "q"))
        assert leader
        assert fresh is not flight

    def test_finish_of_displaced_flight_is_a_noop(self):
        """A flight detached by invalidate must not remove its successor."""
        sf = make()
        old, _ = sf.begin(("db", "q"))
        sf.invalidate(lambda key: True)
        new, leader = sf.begin(("db", "q"))
        assert leader
        sf.finish(old)  # stale handle: the new flight stays registered
        assert sf.inflight() == 1
        again, still_leader = sf.begin(("db", "q"))
        assert not still_leader
        assert again is new


class TestInvalidate:
    def test_db_prefix_invalidation(self):
        sf = make()
        sf.begin(("db_a", "q1"))
        sf.begin(("db_a", "q2"))
        sf.begin(("db_b", "q1"))
        dropped = sf.invalidate(lambda key: key[0] == "db_a")
        assert dropped == 2
        assert sf.inflight() == 1
        # db_a arrivals now lead fresh; db_b still coalesces
        _, leader_a = sf.begin(("db_a", "q1"))
        _, leader_b = sf.begin(("db_b", "q1"))
        assert leader_a
        assert not leader_b

    def test_existing_followers_keep_their_future(self):
        """Invalidation detaches the key; parked followers still resolve
        off the old flight (like an already-served cache hit)."""
        sf = make()
        flight, _ = sf.begin(("db", "q"))
        sf.begin(("db", "q"))  # follower parked pre-invalidation
        sf.invalidate(lambda key: True)
        assert flight.followers == 1  # untouched — they await flight.future
