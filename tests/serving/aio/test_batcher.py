"""MicroBatcher: barrier rendezvous, grouping, accounting, fallbacks."""

import threading
from types import SimpleNamespace

import pytest

from repro.llm.simulated import CALL_OVERHEAD_SECONDS
from repro.llm.tasks import (
    ColumnSelectionTask,
    CorrectionTask,
    CoTAugmentTask,
    EntityExtractionTask,
    GenerationTask,
    SelectAlignmentTask,
)
from repro.serving.aio import BatchingLLM, MicroBatcher, stage_of


def response(latency):
    return SimpleNamespace(latency_seconds=latency, text="r")


class BatchClient:
    """Fake backend with a batched entry point."""

    def __init__(self, latency=1.0):
        self.latency = latency
        self.batches = []
        self.skill = "fake-skill"  # for BatchingLLM fallthrough

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        return [response(self.latency)]

    def complete_batch(self, calls):
        self.batches.append(sorted(c["prompt"] for c in calls))
        return [self.complete(c["prompt"]) for c in calls]


class SerialClient:
    """Fake backend without complete_batch: serial fallback path."""

    def __init__(self, latency=1.0):
        self.latency = latency

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        return [response(self.latency)]


class BoomClient:
    def complete_batch(self, calls):
        raise RuntimeError("backend down")


def task_of(cls):
    """A task payload of the right type without running its constructor
    (stage_of dispatches on type alone)."""
    return object.__new__(cls)


class TestStageOf:
    @pytest.mark.parametrize(
        "cls,stage",
        [
            (EntityExtractionTask, "extraction"),
            (ColumnSelectionTask, "extraction"),
            (CoTAugmentTask, "generation"),
            (GenerationTask, "generation"),
            (SelectAlignmentTask, "alignment"),
            (CorrectionTask, "refinement"),
        ],
    )
    def test_known_tasks(self, cls, stage):
        assert stage_of(task_of(cls)) == stage

    def test_unknown_task_is_other(self):
        assert stage_of(object()) == "other"
        assert stage_of(None) == "other"


def rendezvous(batcher, client, n, prompts=None):
    """Run n concurrent runners each submitting one call; return results."""
    prompts = prompts or [f"p{i}" for i in range(n)]
    results = [None] * n
    errors = [None] * n
    batcher.expect(n)

    def runner(i):
        batcher.runner_begun()
        try:
            results[i] = batcher.submit(client, prompts[i], 0.0, 1, None)
        except BaseException as exc:  # noqa: BLE001 — surfaced to the test
            errors[i] = exc
        finally:
            batcher.runner_finished()

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


class TestRendezvous:
    def test_lone_call_flushes_immediately(self):
        batcher = MicroBatcher()
        client = BatchClient()
        responses = batcher.submit(client, "p", 0.0, 1, None)
        assert len(responses) == 1
        stats = batcher.stats()
        assert stats["calls"] == 1
        assert stats["flushes"] == 1
        assert stats["batched_calls"] == 0  # size-1 invocations don't count
        assert stats["safety_timeouts"] == 0

    def test_concurrent_calls_share_one_invocation(self):
        batcher = MicroBatcher()
        client = BatchClient(latency=1.0)
        results, errors = rendezvous(batcher, client, 3)
        assert errors == [None] * 3
        assert all(len(r) == 1 for r in results)
        assert client.batches == [["p0", "p1", "p2"]]  # one backend call
        stats = batcher.stats()
        assert stats["flushes"] == 1
        assert stats["batched_calls"] == 1
        assert stats["max_batch"] == 3
        # one API overhead + the slowest member's decode
        expected = CALL_OVERHEAD_SECONDS + (1.0 - CALL_OVERHEAD_SECONDS)
        assert stats["backend_busy_seconds"] == pytest.approx(expected)

    def test_serial_fallback_charged_serial_time(self):
        batcher = MicroBatcher()
        results, errors = rendezvous(batcher, SerialClient(latency=1.0), 2)
        assert errors == [None] * 2
        stats = batcher.stats()
        assert stats["backend_busy_seconds"] == pytest.approx(2.0)

    def test_distinct_clients_never_share_an_invocation(self):
        """Routing tiers (distinct clients) stay separate backend calls."""
        batcher = MicroBatcher()
        fast, heavy = BatchClient(), BatchClient()
        results = [None, None]
        batcher.expect(2)

        def runner(i, client):
            batcher.runner_begun()
            try:
                results[i] = batcher.submit(client, f"p{i}", 0.0, 1, None)
            finally:
                batcher.runner_finished()

        threads = [
            threading.Thread(target=runner, args=(0, fast)),
            threading.Thread(target=runner, args=(1, heavy)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert fast.batches == [["p0"]]
        assert heavy.batches == [["p1"]]
        assert batcher.stats()["batched_calls"] == 0

    def test_backend_error_fails_every_member(self):
        batcher = MicroBatcher()
        _, errors = rendezvous(batcher, BoomClient(), 2)
        assert all(isinstance(exc, RuntimeError) for exc in errors)
        assert all("backend down" in str(exc) for exc in errors)

    def test_safety_timeout_flushes_a_stalled_wave(self):
        """A runner that never parks (census says 2 active, only 1 call
        pending) must not deadlock the wave: the wall backstop fires."""
        batcher = MicroBatcher(safety_timeout=0.05)
        client = BatchClient()
        batcher.expect(2)  # the second announced run never starts
        batcher.runner_begun()
        responses = batcher.submit(client, "p", 0.0, 1, None)
        assert len(responses) == 1
        assert batcher.stats()["safety_timeouts"] == 1

    def test_abandon_retracts_announced_runs(self):
        """Cancelled-before-start runs are retracted so the barrier does
        not wait for calls that will never arrive."""
        batcher = MicroBatcher(safety_timeout=5.0)
        client = BatchClient()
        batcher.expect(2)
        batcher.abandon(1)
        batcher.runner_begun()
        # active is 1 now: the lone call flushes without the backstop
        batcher.submit(client, "p", 0.0, 1, None)
        assert batcher.stats()["safety_timeouts"] == 0

    def test_max_batch_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)


class TestBatchingLLM:
    def test_complete_routes_through_the_batcher(self):
        batcher = MicroBatcher()
        client = BatchClient()
        shim = BatchingLLM(client, batcher)
        responses = shim.complete("p")
        assert len(responses) == 1
        assert batcher.stats()["calls"] == 1

    def test_attribute_fallthrough(self):
        shim = BatchingLLM(BatchClient(), MicroBatcher())
        assert shim.skill == "fake-skill"
        with pytest.raises(AttributeError):
            _ = shim.nonexistent_attribute
