"""AsyncServingEngine: equal answers, deterministic coalescing, journal
replay, deadline and cancellation edges, tier-aware dedup."""

import asyncio

import pytest

from repro.caching import normalize_question, result_cache_key
from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.observability.metrics import MetricsRegistry
from repro.routing import TieredPipeline
from repro.serving import (
    AsyncServingEngine,
    ServingEngine,
    ServingJournal,
    recover_run,
)


def fresh_pipeline(benchmark, n_candidates=3):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(benchmark, llm, PipelineConfig(n_candidates=n_candidates))


@pytest.fixture
def workload(tiny_benchmark):
    dev = tiny_benchmark.dev
    # 7 requests over 3 distinct questions: 4 coalesce on a cold run
    return [dev[0], dev[1], dev[0], dev[0], dev[2], dev[1], dev[0]]


def distinct_keys(workload):
    return len({(e.db_id, normalize_question(e.question)) for e in workload})


def sqls(results):
    return [r.final_sql if r is not None else None for r in results]


class TestEqualAnswers:
    def test_matches_threaded_engine(self, tiny_benchmark, workload):
        with ServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=len(workload)
        ) as engine:
            threaded = engine.run(workload)
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=len(workload)
        ) as engine:
            served = engine.run(workload)
            stats = engine.stats()
        assert sqls(served) == sqls(threaded)
        assert None not in sqls(served)
        assert stats.completed == len(workload)
        assert stats.coalesced == len(workload) - distinct_keys(workload)
        assert stats.safety_timeouts == 0

    def test_deterministic_across_runs(self, tiny_benchmark, workload):
        def run_once():
            with AsyncServingEngine(
                fresh_pipeline(tiny_benchmark),
                workers=2,
                queue_capacity=len(workload),
            ) as engine:
                results = engine.run(workload)
                stats = engine.stats()
            return sqls(results), stats

        sql_a, stats_a = run_once()
        sql_b, stats_b = run_once()
        assert sql_a == sql_b
        assert stats_a.coalesced == stats_b.coalesced
        assert stats_a.llm_calls == stats_b.llm_calls
        assert stats_a.flushes == stats_b.flushes
        assert stats_a.backend_busy_seconds == stats_b.backend_busy_seconds

    def test_warm_second_pass_hits_the_result_tier(self, tiny_benchmark, workload):
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=len(workload)
        ) as engine:
            cold = engine.run(workload)
            engine.reset_stats()
            warm_results = engine.run(workload)
            warm = engine.stats()
        assert sqls(warm_results) == sqls(cold)
        assert warm.coalesced == 0
        assert warm.result_hits == len(workload)

    def test_stats_report_shape(self, tiny_benchmark, workload):
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=len(workload)
        ) as engine:
            engine.run(workload)
            stats = engine.stats()
        payload = stats.to_dict()
        assert payload["async"]["coalesced"] == stats.coalesced
        assert payload["async"]["batched_calls"] == stats.batched_calls
        assert stats.coalesced_fraction == pytest.approx(
            stats.coalesced / stats.completed
        )
        assert "coalesced" in stats.format()
        # the async makespan is the backend-busy clock
        assert stats.makespan_seconds == pytest.approx(stats.backend_busy_seconds)
        assert stats.batched_calls > 0
        assert stats.max_batch >= 2


class TestJournalReplay:
    def test_coalesced_commits_replay_like_cache_hits(
        self, tiny_benchmark, workload, tmp_path
    ):
        journal = ServingJournal(tmp_path / "async.jsonl")
        journal.write_header({"requests": len(workload)})
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark),
            workers=2,
            queue_capacity=len(workload),
            journal=journal,
        ) as engine:
            served = engine.run(workload)
        statuses = [journal.committed(seq)["status"] for seq in range(len(workload))]
        assert statuses.count("ok") == distinct_keys(workload)
        assert statuses.count("coalesced") == len(workload) - distinct_keys(workload)

        class Counting:
            def __init__(self, inner):
                self._inner = inner
                self.answers = 0

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def answer(self, example, deadline=None, **kwargs):
                self.answers += 1
                return self._inner.answer(example, deadline=deadline, **kwargs)

        counting = Counting(fresh_pipeline(tiny_benchmark))
        outcomes = recover_run(
            ServingJournal(tmp_path / "async.jsonl"), counting, workload
        )
        assert counting.answers == 0  # fully committed journal: pure replay
        recovered_sql = [
            result.final_sql if result is not None else None
            for _, result, _, _ in outcomes
        ]
        assert recovered_sql == sqls(served)
        # followers replay off the leader's recovered answer, not a rerun
        assert [status for status, _, _, _ in outcomes].count("coalesced") == (
            len(workload) - distinct_keys(workload)
        )


class TestMetrics:
    def test_counters_exported(self, tiny_benchmark, workload):
        metrics = MetricsRegistry()
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark),
            workers=2,
            queue_capacity=len(workload),
            metrics=metrics,
        ) as engine:
            engine.run(workload)
            stats = engine.stats()
        payload = metrics.to_json()
        assert "repro_async_coalesced_total" in payload
        assert "repro_async_batched_calls_total" in payload
        assert "repro_async_batch_size" in payload
        exported = metrics.snapshot()["metrics"]
        coalesced = exported["repro_async_coalesced_total"]["samples"]["_"]
        assert coalesced == stats.coalesced


class TestEdges:
    def test_deadline_truncated_leader_answer_is_not_shared(
        self, tiny_benchmark, workload
    ):
        """A degraded (deadline-truncated) answer must never be served to
        followers: each runs the pipeline itself, so nothing coalesces."""
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark),
            workers=2,
            queue_capacity=len(workload),
            deadline_seconds=1e-6,
        ) as engine:
            served = engine.run(workload)
            stats = engine.stats()
        assert stats.completed == len(workload)
        assert stats.coalesced == 0
        assert stats.deadline_exceeded == len(workload)
        assert all(r is not None and r.deadline_exceeded for r in served)

    def test_follower_cancellation_leaves_the_flight_intact(
        self, tiny_benchmark
    ):
        dev = tiny_benchmark.dev
        engine = AsyncServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=4
        )

        async def scenario():
            leader = asyncio.create_task(engine.submit_async(dev[0]))
            await asyncio.sleep(0)  # leader registers, starts its run
            follower = asyncio.create_task(engine.submit_async(dev[0]))
            other = asyncio.create_task(engine.submit_async(dev[0]))
            await asyncio.sleep(0)  # both park on the leader's future
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            return await leader, await other

        try:
            led, coalesced = asyncio.run(scenario())
        finally:
            engine.shutdown()
        # the cancelled follower poisoned nothing: the leader's answer
        # still resolves, and the surviving follower coalesces onto it
        assert led.final_sql == coalesced.final_sql
        stats = engine.stats()
        assert stats.coalesced == 1
        assert stats.failed == 0
        # the cancelled follower released its admission slot
        assert engine.admission.pending == 0

    def test_invalidate_db_doomes_inflight_keys(self, tiny_benchmark, workload):
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=len(workload)
        ) as engine:
            engine.run(workload)
            db_id = workload[0].db_id
            dropped = engine.invalidate_db(db_id)
            # nothing in flight after the run; the channel still reports
            assert dropped["singleflight"] == 0
            # a fresh pass re-leads: the result tier was invalidated too
            engine.reset_stats()
            engine.run(workload)
            stats = engine.stats()
        assert stats.result_hits < len(workload)

    def test_rejected_requests_yield_none_slots(self, tiny_benchmark, workload):
        with AsyncServingEngine(
            fresh_pipeline(tiny_benchmark), workers=2, queue_capacity=2
        ) as engine:
            served = engine.run(workload)
            stats = engine.stats()
        assert len(served) == len(workload)
        assert stats.shed == len(workload) - 2
        assert sum(1 for r in served if r is None) == len(workload) - 2


class TestTieredDedup:
    def test_dedup_key_carries_the_routed_tier(self, tiny_benchmark, workload):
        """Coalescing over a TieredPipeline dedups on the tier-aware key:
        the same question routed to different tiers can never share a
        leader, and repeats on one tier coalesce as usual."""
        tiered = TieredPipeline(fresh_pipeline(tiny_benchmark))
        keys = {result_cache_key(e, tiered) for e in workload}
        assert all(len(key) == 3 for key in keys)  # (db, question, tier)
        with AsyncServingEngine(
            tiered, workers=2, queue_capacity=len(workload)
        ) as engine:
            served = engine.run(workload)
            stats = engine.stats()
        assert None not in sqls(served)
        assert stats.coalesced == len(workload) - len(keys)
