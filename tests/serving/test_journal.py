"""ServingJournal: durability grammar, torn-line tolerance, exact recovery.

The unit tests drive the journal with bare stand-in examples; the
recovery tests run a real engine over the tiny benchmark, chop the
journal mid-file (simulating a SIGKILL), and certify that recovery
produces the byte-identical deterministic report of an uninterrupted run
with no double-counted costs.
"""

import json
from types import SimpleNamespace

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import ServingEngine, ServingJournal, assemble_report, recover_run


def example(question_id="q1", db_id="db_a"):
    return SimpleNamespace(question_id=question_id, db_id=db_id)


class TestJournalGrammar:
    def test_accept_assigns_monotone_seqs(self, tmp_path):
        journal = ServingJournal(tmp_path / "j.jsonl")
        assert journal.accept(example("q1")) == 0
        assert journal.accept(example("q2")) == 1
        assert journal.pending() == [0, 1]

    def test_commit_clears_pending(self, tmp_path):
        journal = ServingJournal(tmp_path / "j.jsonl")
        seq = journal.accept(example())
        journal.commit(seq, "failed", error="boom")
        assert journal.pending() == []
        assert journal.committed(seq)["error"] == "boom"

    def test_reload_restores_state(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ServingJournal(path)
        journal.write_header({"requests": 4})
        journal.accept(example("q1"))
        journal.accept(example("q2"))
        journal.commit(0, "failed", error="x")
        reloaded = ServingJournal(path)
        assert reloaded.config == {"requests": 4}
        assert reloaded.pending() == [1]
        assert reloaded.accept(example("q3")) == 2

    def test_header_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ServingJournal(path)
        journal.write_header({"a": 1})
        journal.write_header({"a": 2})
        assert ServingJournal(path).config == {"a": 1}

    def test_torn_line_in_the_middle_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ServingJournal(path)
        journal.accept(example("q1"))
        journal.commit(0, "failed", error="x")
        journal.accept(example("q2"))
        journal.commit(1, "failed", error="y")
        lines = path.read_text().splitlines()
        # tear the FIRST commit line in half: a mid-file torn write
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        reloaded = ServingJournal(path)
        # seq 0's commit is gone → pending again; seq 1 survives intact
        assert reloaded.pending() == [0]
        assert reloaded.committed(1)["error"] == "y"

    def test_fsync_every_n_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ServingJournal(tmp_path / "j.jsonl", fsync_every_n=-1)

    def test_on_commit_hook_sees_cumulative_count(self, tmp_path):
        seen = []
        journal = ServingJournal(tmp_path / "j.jsonl", on_commit=seen.append)
        journal.accept(example("q1"))
        journal.accept(example("q2"))
        journal.commit(0, "failed", error="x")
        journal.commit(1, "failed", error="y")
        assert seen == [1, 2]

    def test_stats_dict(self, tmp_path):
        journal = ServingJournal(tmp_path / "j.jsonl")
        journal.accept(example("q1"))
        journal.accept(example("q2"))
        journal.commit(0, "failed", error="x")
        stats = journal.stats_dict()
        assert stats["accepted"] == 2
        assert stats["committed"] == 1
        assert stats["pending"] == 1


class CountingPipeline:
    """Delegates to the real pipeline, counting answer() calls."""

    def __init__(self, inner):
        self._inner = inner
        self.answers = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def answer(self, example, deadline=None, **kwargs):
        self.answers += 1
        return self._inner.answer(example, deadline=deadline, **kwargs)


@pytest.fixture
def journal_workload(tiny_benchmark):
    dev = tiny_benchmark.dev
    # 5 requests with one duplicate: exercises ok, cached and warm-cache
    # paths through the journal
    return [dev[0], dev[1], dev[0], dev[2], dev[1]]


def fresh_pipeline(tiny_benchmark):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=3))


def run_journaled(tiny_benchmark, workload, path):
    pipeline = fresh_pipeline(tiny_benchmark)
    journal = ServingJournal(path)
    journal.write_header({"requests": len(workload)})
    with ServingEngine(pipeline, workers=1, journal=journal) as engine:
        results = engine.run(workload)
    return results, journal


class TestRecovery:
    def test_complete_journal_replays_without_running(
        self, tiny_benchmark, journal_workload, tmp_path
    ):
        _, journal = run_journaled(
            tiny_benchmark, journal_workload, tmp_path / "full.jsonl"
        )
        counting = CountingPipeline(fresh_pipeline(tiny_benchmark))
        outcomes = recover_run(journal, counting, journal_workload)
        assert counting.answers == 0
        assert [status for status, *_ in outcomes] == [
            "ok", "ok", "cached", "ok", "cached",
        ]

    def test_killed_run_recovers_byte_identical(
        self, tiny_benchmark, journal_workload, tmp_path
    ):
        full_path = tmp_path / "full.jsonl"
        run_journaled(tiny_benchmark, journal_workload, full_path)
        full_journal = ServingJournal(full_path)
        scorer = fresh_pipeline(tiny_benchmark)
        full_report = assemble_report(
            recover_run(full_journal, fresh_pipeline(tiny_benchmark),
                        journal_workload),
            journal_workload,
            scorer,
        )

        # simulate a SIGKILL: keep a prefix of the journal plus a torn line
        lines = full_path.read_text().splitlines()
        killed_path = tmp_path / "killed.jsonl"
        killed_path.write_text(
            "\n".join(lines[:4]) + "\n" + lines[4][: len(lines[4]) // 2]
        )
        killed_journal = ServingJournal(killed_path)
        assert killed_journal.pending()  # something really was lost
        recovered_report = assemble_report(
            recover_run(killed_journal, fresh_pipeline(tiny_benchmark),
                        journal_workload),
            journal_workload,
            scorer,
        )

        assert json.dumps(full_report.deterministic_dict(), sort_keys=True) == \
            json.dumps(recovered_report.deterministic_dict(), sort_keys=True)

    def test_no_double_counted_costs(
        self, tiny_benchmark, journal_workload, tmp_path
    ):
        full_path = tmp_path / "full.jsonl"
        run_journaled(tiny_benchmark, journal_workload, full_path)
        lines = full_path.read_text().splitlines()
        killed_path = tmp_path / "killed.jsonl"
        killed_path.write_text("\n".join(lines[:5]) + "\n")
        killed_journal = ServingJournal(killed_path)
        scorer = fresh_pipeline(tiny_benchmark)
        recovered = assemble_report(
            recover_run(killed_journal, fresh_pipeline(tiny_benchmark),
                        journal_workload),
            journal_workload,
            scorer,
        )
        baseline = assemble_report(
            recover_run(ServingJournal(full_path),
                        fresh_pipeline(tiny_benchmark), journal_workload),
            journal_workload,
            scorer,
        )
        assert recovered.cost.total_tokens == baseline.cost.total_tokens
        assert recovered.cost.total_model_seconds == pytest.approx(
            baseline.cost.total_model_seconds
        )

    def test_recovery_is_idempotent(
        self, tiny_benchmark, journal_workload, tmp_path
    ):
        full_path = tmp_path / "full.jsonl"
        run_journaled(tiny_benchmark, journal_workload, full_path)
        lines = full_path.read_text().splitlines()
        killed_path = tmp_path / "killed.jsonl"
        killed_path.write_text("\n".join(lines[:4]) + "\n")
        journal = ServingJournal(killed_path)
        recover_run(journal, fresh_pipeline(tiny_benchmark), journal_workload)
        counting = CountingPipeline(fresh_pipeline(tiny_benchmark))
        recover_run(ServingJournal(killed_path), counting, journal_workload)
        assert counting.answers == 0


class TestEngineIntegration:
    def test_engine_journals_every_request(
        self, tiny_benchmark, journal_workload, tmp_path
    ):
        results, journal = run_journaled(
            tiny_benchmark, journal_workload, tmp_path / "j.jsonl"
        )
        assert all(result is not None for result in results)
        assert len(journal) == len(journal_workload)
        assert journal.pending() == []
        statuses = [
            journal.committed(seq)["status"]
            for seq in range(len(journal_workload))
        ]
        assert statuses == ["ok", "ok", "cached", "ok", "cached"]

    def test_failed_requests_commit_as_failed(self, tiny_benchmark, tmp_path):
        class ExplodingPipeline:
            llm = SimulatedLLM(GPT_4O, seed=0)
            extractor = None
            library = None
            executor_wrapper = None

            def answer(self, example, deadline=None):
                raise RuntimeError("boom")

        journal = ServingJournal(tmp_path / "j.jsonl")
        dev = tiny_benchmark.dev
        engine = ServingEngine(
            ExplodingPipeline(),
            workers=1,
            extraction_cache_size=0,
            fewshot_cache_size=0,
            journal=journal,
        )
        with engine:
            engine.run(dev[:2])
        assert journal.committed(0)["status"] == "failed"
        assert "boom" in journal.committed(0)["error"]
