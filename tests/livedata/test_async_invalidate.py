"""invalidate_db racing an in-flight single-flight leader.

The hazard: a follower parks on a leader's future, the database
mutates mid-flight, and the leader then publishes an answer computed
against pre-mutation content.  ``invalidate_db`` must doom the flight
so the parked follower re-runs against the new catalog instead of
being served the stale answer.
"""

import asyncio
import threading

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.livedata.epoch import EpochRegistry
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import AsyncServingEngine


@pytest.fixture
def world():
    benchmark = build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
    )
    return benchmark, pipeline


async def _wait_until(condition, timeout=10.0):
    for _ in range(int(timeout / 0.01)):
        if condition():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition never became true")


class TestAsyncInvalidateRace:
    def test_parked_follower_is_not_served_the_doomed_answer(self, world):
        benchmark, pipeline = world
        engine = AsyncServingEngine(pipeline, workers=2, queue_capacity=8)
        registry = EpochRegistry()
        engine.attach_livedata(registry)
        example = benchmark.dev[0]

        entered = threading.Event()
        gate = threading.Event()
        calls = []
        guarded = engine._answer_guarded

        def gated(ex, deadline, trace):
            calls.append(ex.question_id)
            entered.set()
            assert gate.wait(timeout=30), "leader never released"
            return guarded(ex, deadline, trace)

        engine._answer_guarded = gated

        async def scenario():
            leader = asyncio.create_task(engine.submit_async(example))
            # the leader is now pinned inside the run pool, pre-answer
            await _wait_until(entered.is_set)
            follower = asyncio.create_task(engine.submit_async(example))
            await _wait_until(lambda: engine.singleflight.coalesced_total == 1)
            # the database mutates while both requests are in flight
            registry.bump(example.db_id)
            dropped = engine.invalidate_db(example.db_id)
            gate.set()
            results = await asyncio.gather(leader, follower)
            return dropped, results

        with engine:
            dropped, results = asyncio.run(scenario())
            stats = engine.stats()

        # exactly the one in-flight key was doomed
        assert dropped["singleflight"] == 1
        # the follower re-ran the pipeline instead of coalescing onto the
        # leader's pre-invalidation answer: two pipeline runs, zero
        # requests recorded as coalesced
        assert len(calls) == 2
        assert stats.coalesced == 0
        assert stats.completed == 2
        # both answers exist and agree — both were computed at the new
        # epoch (the leader was gated until after the bump, so its pin
        # already saw the mutated catalog; the follower re-derived)
        assert all(r is not None and r.final_sql for r in results)
        assert results[0].final_sql == results[1].final_sql

    def test_untouched_db_flights_survive_the_invalidation(self, world):
        """Dooming is db-scoped: an in-flight request for another
        database keeps its flight and still coalesces."""
        benchmark, pipeline = world
        engine = AsyncServingEngine(pipeline, workers=2, queue_capacity=8)
        registry = EpochRegistry()
        engine.attach_livedata(registry)
        by_db = {}
        for example in benchmark.dev:
            by_db.setdefault(example.db_id, example)
        (db_a, ex_a), (db_b, ex_b) = sorted(by_db.items())[:2]

        entered = threading.Event()
        gate = threading.Event()
        guarded = engine._answer_guarded

        def gated(ex, deadline, trace):
            entered.set()
            assert gate.wait(timeout=30), "leader never released"
            return guarded(ex, deadline, trace)

        engine._answer_guarded = gated

        async def scenario():
            lead_b = asyncio.create_task(engine.submit_async(ex_b))
            await _wait_until(entered.is_set)
            follow_b = asyncio.create_task(engine.submit_async(ex_b))
            await _wait_until(lambda: engine.singleflight.coalesced_total == 1)
            registry.bump(db_a)
            dropped = engine.invalidate_db(db_a)
            gate.set()
            results = await asyncio.gather(lead_b, follow_b)
            return dropped, results

        with engine:
            dropped, results = asyncio.run(scenario())
            stats = engine.stats()

        assert dropped["singleflight"] == 0
        assert stats.coalesced == 1
        assert results[0].final_sql == results[1].final_sql
