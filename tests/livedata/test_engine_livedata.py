"""ServingEngine live-data wiring: stale detection, bounded retry,
epoch-scoped cache keys, and per-database invalidation across tiers."""

import pytest

from repro.caching import result_cache_key
from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.livedata.epoch import EpochRegistry
from repro.livedata.errors import StaleCatalogError
from repro.livedata.mutations import MutationDriver
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving.engine import CachingFewShotLibrary, ServingEngine


@pytest.fixture
def world():
    benchmark = build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
    )
    return benchmark, pipeline


def live_engine(pipeline, **kwargs):
    engine = ServingEngine(pipeline, workers=1, queue_capacity=8, **kwargs)
    registry = EpochRegistry()
    engine.attach_livedata(registry)
    return engine, registry


class TestStaleDetection:
    def test_mutation_mid_request_is_detected_and_retried_once(self, world):
        """Bump the epoch between extraction and SQL execution: the
        pre-execute guard turns the race into a typed StaleCatalogError
        and the engine absorbs exactly one retry at the new epoch."""
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        example = benchmark.dev[0]
        bumped = []
        extractor = engine.pipeline.extractor
        original = extractor.inner.run

        def racing_run(*args, **kwargs):
            if not bumped:
                bumped.append(registry.bump(example.db_id))
            return original(*args, **kwargs)

        extractor.inner.run = racing_run
        try:
            with engine:
                result = engine.answer(example)
        finally:
            extractor.inner.run = original
        assert result.final_sql
        assert bumped == [1]
        stats = engine.livedata_stats
        assert stats["stale_detected"] == 1
        assert stats["stale_retried"] == 1
        assert stats["stale_served"] == 0

    def test_double_mutation_escapes_as_typed_failure(self, world):
        """The retry budget is one: a catalog that moves again during the
        retry fails the request with StaleCatalogError."""
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        example = benchmark.dev[0]
        extractor = engine.pipeline.extractor
        original = extractor.inner.run

        def always_racing(*args, **kwargs):
            registry.bump(example.db_id)
            return original(*args, **kwargs)

        extractor.inner.run = always_racing
        try:
            with engine:
                with pytest.raises(StaleCatalogError):
                    engine.submit(example, block=True).result()
        finally:
            extractor.inner.run = original
        stats = engine.livedata_stats
        assert stats["stale_detected"] == 2
        assert stats["stale_retried"] == 1

    def test_journal_commits_carry_epoch_stamps(self, world, tmp_path):
        from repro.serving.journal import ServingJournal

        benchmark, pipeline = world
        journal = ServingJournal(tmp_path / "journal.jsonl")
        journal.write_header({"kind": "test"})
        engine, registry = live_engine(pipeline, journal=journal)
        example = benchmark.dev[0]
        with engine:
            engine.answer(example)
            registry.bump(example.db_id)
            engine.invalidate_db(example.db_id)
            engine.answer(example)
        import json

        stamps = [
            record.get("schema_epoch")
            for record in map(
                json.loads, (tmp_path / "journal.jsonl").read_text().splitlines()
            )
            if record.get("type") == "committed"
        ]
        assert stamps == [0, 1]


class TestEpochScopedCaches:
    def test_mutation_invalidates_the_result_tier_by_key(self, world):
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        example = benchmark.dev[0]
        with engine:
            first = engine.answer(example)
            repeat = engine.answer(example)
            registry.bump(example.db_id)
            fresh = engine.answer(example)
        stats = engine.stats()
        # the repeat hit the cache; the post-mutation request could not —
        # its key carries the new epoch
        assert stats.result_hits == 1
        assert repeat is first
        assert fresh is not first

    def test_result_cache_key_includes_the_epoch(self, world):
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        example = benchmark.dev[0]
        before = result_cache_key(example, engine.pipeline)
        registry.bump(example.db_id)
        after = result_cache_key(example, engine.pipeline)
        assert before != after
        engine.shutdown()


class TestInvalidateDb:
    def test_invalidation_drops_exactly_the_mutated_db(self, world):
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        by_db = {}
        for example in benchmark.dev:
            by_db.setdefault(example.db_id, example)
        (db_a, ex_a), (db_b, ex_b) = sorted(by_db.items())[:2]
        with engine:
            engine.answer(ex_a)
            engine.answer(ex_b)
            dropped = engine.invalidate_db(db_a)
            # db_a entries went; db_b survives as a hit
            engine.answer(ex_b)
        assert dropped["result"] >= 1
        assert dropped["extraction"] >= 1
        assert engine.stats().result_hits == 1
        assert engine.livedata_stats["invalidations"] == 1

    def test_fewshot_side_index_drops_stale_neighbors(self, world):
        """The few-shot tier keys carry questions, not source dbs; the
        side index must still drop every cached retrieval containing a
        shot from the mutated database."""
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        library = engine.pipeline.library
        assert isinstance(library, CachingFewShotLibrary)
        example = benchmark.dev[0]
        shots = library.search(example.question, k=3, db_id=example.db_id)
        assert shots
        source_dbs = {entry.example.db_id for entry in shots}
        # a repeat is a hit...
        assert library.search(example.question, k=3, db_id=example.db_id) is shots
        # ...until any db the result touches mutates
        victim = sorted(source_dbs)[0]
        dropped = library.invalidate_db(victim)
        assert dropped >= 1
        fresh = library.search(example.question, k=3, db_id=example.db_id)
        assert fresh is not shots
        # an unrelated database's invalidation leaves the new entry alone
        assert library.invalidate_db("no-such-db") == 0
        assert library.search(example.question, k=3, db_id=example.db_id) is fresh
        engine.shutdown()

    def test_mutation_driver_end_to_end_stays_stale_free(self, world):
        benchmark, pipeline = world
        engine, registry = live_engine(pipeline)
        driver = MutationDriver(benchmark, registry, seed=0)
        workload = list(benchmark.dev) * 2
        with engine:
            for position, example in enumerate(workload):
                result = engine.answer(example)
                assert result.final_sql
                if position % 2 == 1:
                    event = driver.mutate()
                    engine.invalidate_db(event.db_id)
        assert engine.livedata_stats["stale_served"] == 0
        assert len(driver.events) == len(workload) // 2
