"""ReindexWorker: checkpointed, SIGKILL-resumable, never-double catch-up."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.livedata.epoch import EpochRegistry
from repro.livedata.errors import LiveDataError
from repro.livedata.mutations import MutationDriver
from repro.livedata.reindex import DoubleReindexError, ReindexWorker
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.storage.format import JournalCorruptionError


@pytest.fixture
def world():
    benchmark = build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
    )
    registry = EpochRegistry()
    driver = MutationDriver(benchmark, registry, seed=0)
    return benchmark, pipeline, registry, driver


class TestReindex:
    def test_reindex_swaps_fresh_artifacts(self, world, tmp_path):
        benchmark, pipeline, registry, driver = world
        event = driver.mutate()
        before = pipeline.databases[event.db_id]
        worker = ReindexWorker(pipeline, tmp_path / "ck.jsonl", registry=registry)
        report = worker.reindex(event.db_id)
        worker.close()
        assert report.epoch == event.epoch
        assert report.units[0] == "schema"
        assert report.units[-1] == "fewshot"
        assert report.vectors > 0
        assert report.catchup_seconds == pytest.approx(report.vectors * 0.0005)
        assert pipeline.databases[event.db_id] is not before

    def test_double_reindex_is_a_typed_refusal(self, world, tmp_path):
        _, pipeline, registry, driver = world
        event = driver.mutate()
        worker = ReindexWorker(pipeline, tmp_path / "ck.jsonl", registry=registry)
        worker.reindex(event.db_id, epoch=event.epoch)
        with pytest.raises(DoubleReindexError) as excinfo:
            worker.reindex(event.db_id, epoch=event.epoch)
        worker.close()
        assert excinfo.value.db_id == event.db_id
        assert excinfo.value.epoch == event.epoch
        assert not worker.checkpoint.duplicate_done

    def test_kill_and_resume_is_byte_identical(self, world, tmp_path):
        """Truncate the checkpoint at every byte-boundary a SIGKILL could
        leave and resume with a fresh worker: every resume converges on
        the uninterrupted reference file."""
        _, pipeline, registry, driver = world
        event = driver.mutate()
        ref_path = tmp_path / "ref.jsonl"
        ref = ReindexWorker(pipeline, ref_path, registry=registry)
        ref.reindex(event.db_id, epoch=event.epoch)
        ref.close()
        ref_bytes = ref_path.read_bytes()
        lines = ref_bytes.splitlines(keepends=True)
        # clean cuts after each record, plus a torn cut mid-record
        offsets = [0]
        total = 0
        for line in lines:
            offsets.append(total + len(line) // 2)  # torn
            total += len(line)
            offsets.append(total)  # clean
        for offset in sorted(set(offsets)):
            cut = tmp_path / "cut.jsonl"
            cut.write_bytes(ref_bytes[:offset])
            worker = ReindexWorker(pipeline, cut, registry=registry)
            try:
                resumed = worker.reindex(event.db_id, epoch=event.epoch)
                if offset < total:
                    assert resumed.resumed_units >= 0
            except DoubleReindexError:
                assert offset == total  # only the complete file refuses
            worker.close()
            assert cut.read_bytes() == ref_bytes, f"diverged at offset {offset}"

    def test_interior_damage_is_refused_not_resumed(self, world, tmp_path):
        _, pipeline, registry, driver = world
        event = driver.mutate()
        path = tmp_path / "ck.jsonl"
        worker = ReindexWorker(pipeline, path, registry=registry)
        worker.reindex(event.db_id, epoch=event.epoch)
        worker.close()
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 3
        lines[1] = b'####flipped-bits{"not json\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptionError):
            ReindexWorker(pipeline, path, registry=registry)

    def test_digest_mismatch_is_typed_drift(self, world, tmp_path):
        """A resumed recomputation that disagrees with the checkpointed
        digest means the world moved between the two passes — typed
        failure, never silent divergence."""
        benchmark, pipeline, registry, driver = world
        event = driver.mutate()
        path = tmp_path / "ck.jsonl"
        worker = ReindexWorker(pipeline, path, registry=registry)
        worker.reindex(event.db_id, epoch=event.epoch)
        worker.close()
        # drop the done record so the resume recomputes, then mutate the
        # database again WITHOUT an epoch bump the checkpoint knows about
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]))
        built = benchmark.databases[event.db_id]
        table = built.schema.tables[0]
        built.connection.execute(
            f'ALTER TABLE "{table.name}" ADD COLUMN "sneaky" TEXT'
        )
        from dataclasses import replace

        from repro.schema.model import Column

        built.schema = replace(
            built.schema,
            tables=tuple(
                replace(t, columns=t.columns + (Column(name="sneaky", type_name="TEXT", description="drifted"),))
                if t.name == table.name
                else t
                for t in built.schema.tables
            ),
        )
        resumed = ReindexWorker(pipeline, path, registry=registry)
        with pytest.raises(LiveDataError, match="digest mismatch"):
            resumed.reindex(event.db_id, epoch=event.epoch)
        resumed.close()

    def test_background_worker_drains_bumps_from_the_registry(
        self, world, tmp_path
    ):
        _, pipeline, registry, driver = world
        worker = ReindexWorker(pipeline, tmp_path / "ck.jsonl", registry=registry)
        worker.watch(registry)
        worker.start()
        events = [driver.mutate() for _ in range(3)]
        worker.drain()
        worker.close()
        done = {(r.db_id, r.epoch) for r in worker.reports}
        assert done == {(e.db_id, e.epoch) for e in events}
        assert worker.last_error is None
        probe = worker.probe()
        assert probe["pending"] == 0
        assert probe["completed"] == len(events)
