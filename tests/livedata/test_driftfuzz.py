"""Drift-chaos certifier: a bounded campaign certifies and is
deterministic across runs (the CLI diffs two ``--out`` documents)."""

import json

from repro.livedata.driftfuzz import DriftFuzzConfig, run_drift_fuzz


def small_config():
    return DriftFuzzConfig(
        requests=4,
        distinct=3,
        seed=0,
        candidates=3,
        routing=False,
        mutate_every=2,
        limit=2,
    )


class TestDriftFuzz:
    def test_small_campaign_certifies(self, tmp_path):
        result = run_drift_fuzz(small_config(), tmp_path / "run")
        assert result.ok, result.to_dict()
        assert result.mutations
        assert len(result.reindexes) == len(result.mutations)
        assert result.stale_serves == 0
        assert result.duplicate_done == 0
        # both SIGKILL cut shapes were enumerated and every cut resumed
        # byte-identically (or refused a completed checkpoint, typed)
        kinds = {o.kind for o in result.outcomes}
        assert kinds >= {"clean", "torn"}
        outcomes = {o.outcome for o in result.outcomes}
        assert outcomes <= {"identical", "already-done"}
        assert "CERTIFIED" in result.format()
        # journal commits carried the mutations' epoch stamps
        assert result.epoch_stamps

    def test_same_seed_is_byte_identical(self, tmp_path):
        first = run_drift_fuzz(small_config(), tmp_path / "a")
        second = run_drift_fuzz(small_config(), tmp_path / "b")
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
