"""MutationDriver: seeded replayable drift that never breaks old SQL.

Each test builds its own benchmark — the driver mutates databases in
place, so the session-scoped fixtures must stay untouched.
"""

import pytest

from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.livedata.epoch import EpochRegistry
from repro.livedata.mutations import MutationDriver


def fresh_benchmark():
    return build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )


@pytest.fixture
def mutable_benchmark():
    return fresh_benchmark()


def drive(mutable_benchmark, count, seed=0):
    registry = EpochRegistry()
    driver = MutationDriver(mutable_benchmark, registry, seed=seed)
    for _ in range(count):
        driver.mutate()
    return driver, registry


class TestDeterminism:
    def test_same_seed_same_mutation_log(self, mutable_benchmark):
        first, _ = drive(mutable_benchmark, 8, seed=5)
        second, _ = drive(fresh_benchmark(), 8, seed=5)
        assert first.log_dict() == second.log_dict()

    def test_different_seed_different_log(self, mutable_benchmark):
        first, _ = drive(mutable_benchmark, 8, seed=5)
        second, _ = drive(fresh_benchmark(), 8, seed=6)
        assert first.log_dict() != second.log_dict()

    def test_every_mutation_bumps_the_epoch(self, mutable_benchmark):
        driver, registry = drive(mutable_benchmark, 6)
        assert driver.events
        total = sum(registry.snapshot().values())
        assert total == len(driver.events)
        for event in driver.events:
            assert event.epoch >= 1


class TestPipelineSurvivable:
    def test_gold_sql_executes_at_every_later_epoch(self, mutable_benchmark):
        """Renames leave compatibility views; drops only take drift
        columns — so SQL valid at epoch 0 stays valid forever."""
        golds = [
            (e.db_id, e.gold_sql)
            for e in mutable_benchmark.dev
        ]
        driver, _ = drive(mutable_benchmark, 12)
        assert {e.kind for e in driver.events} >= {"value_churn"}
        for db_id, sql in golds:
            mutable_benchmark.databases[db_id].connection.execute(sql).fetchall()

    def test_schema_model_tracks_the_live_database(self, mutable_benchmark):
        """After any mix of mutations, the published schema model and the
        SQLite reality agree: every modeled table and column SELECTs."""
        driver, _ = drive(mutable_benchmark, 12)
        for db_id in {e.db_id for e in driver.events}:
            built = mutable_benchmark.databases[db_id]
            for table in built.schema.tables:
                columns = ", ".join(f'"{c.name}"' for c in table.columns)
                built.connection.execute(
                    f'SELECT {columns} FROM "{table.name}" LIMIT 1'
                ).fetchall()


class TestRebuildReplay:
    def test_reconnect_replays_the_mutation_log(self, mutable_benchmark):
        driver, _ = drive(mutable_benchmark, 10)
        mutated = {e.db_id for e in driver.events}
        for db_id in mutated:
            built = mutable_benchmark.databases[db_id]
            # counts per table before the reconnect
            before = {
                t.name: built.connection.execute(
                    f'SELECT COUNT(*) FROM "{t.name}"'
                ).fetchone()[0]
                for t in built.schema.tables
            }
            connection = built.rebuild()
            after = {
                name: connection.execute(
                    f'SELECT COUNT(*) FROM "{name}"'
                ).fetchone()[0]
                for name in before
            }
            # a chaos-recycled connection must not time-travel to epoch 0:
            # churned rows, added columns and renamed tables all survive
            assert after == before
