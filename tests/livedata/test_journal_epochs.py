"""Cross-epoch replay refusal: journal v2 records stamped with
``schema_epoch`` cannot replay against a catalog at another epoch."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.livedata.epoch import EpochRegistry
from repro.livedata.errors import CrossEpochReplayError
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import ServingEngine, ServingJournal, recover_run
from repro.serving.journal import check_epoch_stamps, epoch_stamps

from tests.test_cli import run_cli


def fresh_world():
    benchmark = build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )
    pipeline = OpenSearchSQL(
        benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=3)
    )
    return benchmark, pipeline


class TestCrossEpochReplay:
    def write_spanning_journal(self, tmp_path):
        """Serve the same question at epoch 0 and epoch 1."""
        benchmark, pipeline = fresh_world()
        journal = ServingJournal(tmp_path / "journal.jsonl")
        journal.write_header({"kind": "test"})
        engine = ServingEngine(pipeline, workers=1, queue_capacity=8, journal=journal)
        registry = EpochRegistry()
        engine.attach_livedata(registry)
        example = benchmark.dev[0]
        with engine:
            engine.answer(example)
            registry.bump(example.db_id)
            engine.invalidate_db(example.db_id)
            engine.answer(example)
        return example, tmp_path / "journal.jsonl"

    def test_differing_stamps_raise_a_typed_refusal(self, tmp_path):
        example, path = self.write_spanning_journal(tmp_path)
        workload = [example, example]
        # a freshly rebuilt catalog is at epoch 0 everywhere
        _, replay_pipeline = fresh_world()
        journal = ServingJournal(path)
        assert epoch_stamps(journal, workload) == {example.db_id: [0, 1]}
        with pytest.raises(CrossEpochReplayError) as excinfo:
            check_epoch_stamps(journal, replay_pipeline, workload)
        assert excinfo.value.db_id == example.db_id
        assert excinfo.value.recorded_epochs == (0, 1)
        assert excinfo.value.current_epoch == 0

    def test_recover_run_refuses_before_replaying_anything(self, tmp_path):
        example, path = self.write_spanning_journal(tmp_path)
        _, replay_pipeline = fresh_world()
        with pytest.raises(CrossEpochReplayError):
            recover_run(ServingJournal(path), replay_pipeline, [example, example])

    def test_matching_epoch_catalog_replays_cleanly(self, tmp_path):
        """A replay catalog advanced to the journal's (single) epoch is
        not cross-epoch: recovery proceeds."""
        benchmark, pipeline = fresh_world()
        journal = ServingJournal(tmp_path / "journal.jsonl")
        journal.write_header({"kind": "test"})
        engine = ServingEngine(pipeline, workers=1, queue_capacity=8, journal=journal)
        registry = EpochRegistry()
        engine.attach_livedata(registry)
        example = benchmark.dev[0]
        registry.bump(example.db_id)  # whole run happens at epoch 1
        with engine:
            engine.answer(example)
        _, replay_pipeline = fresh_world()
        replay_registry = EpochRegistry()
        replay_registry.advance(example.db_id, 1)
        replay_pipeline.epochs = replay_registry
        outcomes = recover_run(
            ServingJournal(tmp_path / "journal.jsonl"), replay_pipeline, [example]
        )
        assert [status for status, *_ in outcomes] == ["ok"]

    def test_unstamped_prelivedata_journal_replays(self, tmp_path):
        benchmark, pipeline = fresh_world()
        journal = ServingJournal(tmp_path / "journal.jsonl")
        journal.write_header({"kind": "test"})
        engine = ServingEngine(pipeline, workers=1, queue_capacity=8, journal=journal)
        example = benchmark.dev[0]
        with engine:
            engine.answer(example)
        _, replay_pipeline = fresh_world()
        outcomes = recover_run(
            ServingJournal(tmp_path / "journal.jsonl"), replay_pipeline, [example]
        )
        assert [status for status, *_ in outcomes] == ["ok"]


class TestRecoverCli:
    def test_dry_run_reports_and_full_recover_refuses(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "8", "--distinct", "3",
            "--mutate-every", "1", "--journal", str(journal_path),
        )
        assert code == 0
        # inspection never refuses: it reports WHY recover will
        code, text = run_cli("recover", "--journal", str(journal_path), "--dry-run")
        assert code == 0
        assert "CROSS-EPOCH" in text
        assert "recover will refuse" in text
        code, text = run_cli("recover", "--journal", str(journal_path))
        assert code == 2
        assert "cross-epoch replay refused" in text
        assert "schema_epoch" in text
