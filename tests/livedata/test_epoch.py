"""EpochRegistry: monotone per-database schema epochs."""

from repro.livedata.epoch import EpochRegistry


class TestEpochRegistry:
    def test_unmutated_db_is_epoch_zero(self):
        assert EpochRegistry().epoch("hockey") == 0

    def test_bump_is_monotone_per_db(self):
        registry = EpochRegistry()
        assert registry.bump("hockey") == 1
        assert registry.bump("hockey") == 2
        assert registry.epoch("hockey") == 2
        assert registry.epoch("finance") == 0

    def test_listeners_fire_on_bump_in_order(self):
        registry = EpochRegistry()
        seen = []
        registry.add_listener(lambda db, e: seen.append(("a", db, e)))
        registry.add_listener(lambda db, e: seen.append(("b", db, e)))
        registry.bump("hockey")
        assert seen == [("a", "hockey", 1), ("b", "hockey", 1)]

    def test_advance_adopts_a_broadcast_epoch(self):
        registry = EpochRegistry()
        seen = []
        registry.add_listener(lambda db, e: seen.append(e))
        assert registry.advance("hockey", 3) == 3
        assert registry.epoch("hockey") == 3
        assert seen == [3]

    def test_advance_is_monotone_stale_broadcasts_are_noops(self):
        registry = EpochRegistry()
        registry.advance("hockey", 3)
        seen = []
        registry.add_listener(lambda db, e: seen.append(e))
        # a replayed or reordered broadcast must not regress the epoch
        # and must not re-fire listeners
        assert registry.advance("hockey", 3) == 3
        assert registry.advance("hockey", 1) == 3
        assert registry.epoch("hockey") == 3
        assert seen == []
        # bump continues from the adopted value
        assert registry.bump("hockey") == 4

    def test_snapshot_and_mutated_dbs(self):
        registry = EpochRegistry()
        registry.bump("music")
        registry.advance("finance", 2)
        assert registry.snapshot() == {"finance": 2, "music": 1}
        assert registry.mutated_dbs() == ["finance", "music"]
