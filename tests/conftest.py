"""Shared fixtures: session-scoped benchmarks so the expensive builds run
once per test session."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import build_bird_like
from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.datasets.spider import build_spider_like
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O


@pytest.fixture(scope="session")
def tiny_benchmark():
    """Two domains, minimal quotas — fast enough for unit tests."""
    return build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )


@pytest.fixture(scope="session")
def bird_benchmark():
    """The full BIRD-like suite (shared, read-only)."""
    return build_bird_like()


@pytest.fixture(scope="session")
def spider_benchmark():
    return build_spider_like()


@pytest.fixture(scope="session")
def llm():
    return SimulatedLLM(GPT_4O, seed=0)


@pytest.fixture(scope="session")
def tiny_pipeline(tiny_benchmark, llm):
    """A full pipeline over the tiny benchmark with a small vote."""
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=5))
