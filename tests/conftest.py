"""Shared fixtures: session-scoped benchmarks so the expensive builds run
once per test session.  Also hosts the dependency-free per-test timeout
guard (``REPRO_TEST_TIMEOUT``)."""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import build_bird_like
from repro.datasets.build import build_benchmark
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.datasets.domains.hockey import DOMAIN as HOCKEY
from repro.datasets.spider import build_spider_like
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O


#: per-test wall-clock budget in seconds; 0 / unset disables the guard.
_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or 0)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Fail any test whose call phase exceeds ``REPRO_TEST_TIMEOUT``.

    Dependency-free (no pytest-timeout in the image): the test body is
    timed, and a breach fails the test *after* it returns rather than
    interrupting it mid-flight.  That still turns a runaway test into a
    named failure with its duration instead of a silent slow suite, and
    the CI job's own timeout remains the backstop for a true hang.
    """
    started = time.monotonic()
    result = yield
    elapsed = time.monotonic() - started
    if _TEST_TIMEOUT and elapsed > _TEST_TIMEOUT:
        pytest.fail(
            f"{item.nodeid} took {elapsed:.1f}s, over the "
            f"REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:.0f}s per-test budget",
            pytrace=False,
        )
    return result


@pytest.fixture(scope="session")
def tiny_benchmark():
    """Two domains, minimal quotas — fast enough for unit tests."""
    return build_benchmark(
        name="tiny",
        domains=[HEALTHCARE, HOCKEY],
        per_template_train=2,
        per_template_dev=1,
        per_template_test=1,
        seed=3,
    )


@pytest.fixture(scope="session")
def bird_benchmark():
    """The full BIRD-like suite (shared, read-only)."""
    return build_bird_like()


@pytest.fixture(scope="session")
def spider_benchmark():
    return build_spider_like()


@pytest.fixture(scope="session")
def llm():
    return SimulatedLLM(GPT_4O, seed=0)


@pytest.fixture(scope="session")
def tiny_pipeline(tiny_benchmark, llm):
    """A full pipeline over the tiny benchmark with a small vote."""
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=5))
