"""End-to-end pipeline tests over the tiny benchmark."""


from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.execution.executor import ExecutionStatus


class TestAnswer:
    def test_answer_produces_sql(self, tiny_pipeline, tiny_benchmark):
        example = tiny_benchmark.dev[0]
        result = tiny_pipeline.answer(example)
        assert result.final_sql
        assert result.question_id == example.question_id

    def test_final_sql_executes(self, tiny_pipeline, tiny_benchmark):
        for example in tiny_benchmark.dev[:8]:
            result = tiny_pipeline.answer(example)
            outcome = tiny_pipeline.executor(example.db_id).execute(result.final_sql)
            # Final SQL should at least not be a hard execution error most of
            # the time (correction + vote weed those out).
            assert outcome.status in (
                ExecutionStatus.OK,
                ExecutionStatus.EMPTY,
            ) or result.refinement.candidates

    def test_observables_populated(self, tiny_pipeline, tiny_benchmark):
        result = tiny_pipeline.answer(tiny_benchmark.dev[0])
        assert result.generation_sql
        assert result.refined_sql
        assert result.extraction is not None
        assert result.refinement is not None

    def test_candidate_count_matches_config(self, tiny_pipeline, tiny_benchmark):
        result = tiny_pipeline.answer(tiny_benchmark.dev[0])
        assert len(result.refinement.candidates) <= 5  # unparsed may drop

    def test_cost_stages_tracked(self, tiny_pipeline, tiny_benchmark):
        result = tiny_pipeline.answer(tiny_benchmark.dev[0])
        stages = result.cost.stages
        assert "extraction" in stages
        assert "generation" in stages
        assert stages["generation"].total_tokens > 0

    def test_deterministic_across_runs(self, tiny_benchmark, llm):
        """Execution *results* are deterministic across identical runs.

        The final SQL string itself may differ: Eq. 3 tie-breaks equal-result
        candidates by measured execution time, which is wall-clock dependent —
        but every candidate in the winning group produces the same rows, so
        correctness (and every benchmark table) is reproducible.
        """
        config = PipelineConfig(n_candidates=3)
        a = OpenSearchSQL(tiny_benchmark, llm, config)
        b = OpenSearchSQL(tiny_benchmark, llm, config)
        for example in tiny_benchmark.dev[:5]:
            executor = a.executor(example.db_id)
            rows_a = executor.execute(a.answer(example).final_sql).rows
            rows_b = executor.execute(b.answer(example).final_sql).rows
            assert sorted(map(str, rows_a)) == sorted(map(str, rows_b))

    def test_single_candidate_without_self_consistency(
        self, tiny_benchmark, llm
    ):
        config = PipelineConfig(n_candidates=9, use_self_consistency=False)
        pipeline = OpenSearchSQL(tiny_benchmark, llm, config)
        result = pipeline.answer(tiny_benchmark.dev[0])
        assert len(result.refinement.candidates) == 1

    def test_answer_many(self, tiny_pipeline, tiny_benchmark):
        results = tiny_pipeline.answer_many(tiny_benchmark.dev[:3])
        assert len(results) == 3

    def test_preprocessing_cost_tracked(self, tiny_pipeline):
        stage = tiny_pipeline.preprocessing_cost.stage("preprocessing")
        assert stage.calls > 0
        assert stage.total_tokens > 0

    def test_executor_cached(self, tiny_pipeline):
        first = tiny_pipeline.executor("healthcare")
        assert tiny_pipeline.executor("healthcare") is first


class TestCostTracker:
    def test_merge(self):
        from repro.core.cost import CostTracker
        from repro.llm.base import TokenUsage

        a = CostTracker()
        a.stage("x").add_usage(TokenUsage(10, 5), model_seconds=1.0)
        b = CostTracker()
        b.stage("x").add_usage(TokenUsage(1, 1), model_seconds=0.5)
        b.stage("y").add_usage(TokenUsage(2, 2))
        a.merge(b)
        assert a.stage("x").total_tokens == 17
        assert a.stage("x").model_seconds == 1.5
        assert a.stage("y").calls == 1

    def test_timed_context(self):
        from repro.core.cost import CostTracker

        tracker = CostTracker()
        with tracker.timed("stage"):
            pass
        assert tracker.stage("stage").wall_seconds >= 0

    def test_summary_shape(self):
        from repro.core.cost import CostTracker
        from repro.llm.base import TokenUsage

        tracker = CostTracker()
        tracker.stage("s").add_usage(TokenUsage(3, 4))
        summary = tracker.summary()
        assert summary["s"]["tokens"] == 7
        assert set(summary["s"]) == {"seconds", "model_seconds", "tokens", "calls"}
