"""PipelineConfig validation tests."""

import pytest

from repro.core.config import PipelineConfig


class TestValidation:
    def test_defaults_are_paper_settings(self):
        config = PipelineConfig()
        assert config.n_candidates == 21
        assert config.generation_temperature == 0.7
        assert config.extraction_temperature == 0.0
        assert config.n_few_shot == 5
        assert config.similarity_threshold == 0.65
        assert config.fewshot_style == "query_cot_sql"
        assert config.cot_mode == "structured"

    def test_all_modules_on_by_default(self):
        config = PipelineConfig()
        assert all(
            getattr(config, flag)
            for flag in (
                "use_extraction",
                "use_values_retrieval",
                "use_column_filtering",
                "use_info_alignment",
                "use_alignments",
                "use_refinement",
                "use_correction",
                "use_self_consistency",
            )
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_candidates": 0},
            {"fewshot_style": "zero"},
            {"cot_mode": "fancy"},
            {"vector_index": "faiss"},
            {"similarity_threshold": 1.5},
            {"similarity_threshold": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)

    def test_with_creates_modified_copy(self):
        base = PipelineConfig()
        ablated = base.with_(use_extraction=False)
        assert not ablated.use_extraction
        assert base.use_extraction
        assert ablated.n_candidates == base.n_candidates

    def test_with_validates(self):
        with pytest.raises(ValueError):
            PipelineConfig().with_(cot_mode="bogus")
