"""Refinement stage tests: alignment passthrough, correction, and the
self-consistency vote (paper Eq. 3)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.refinement import RefinedCandidate, Refiner, vote
from repro.execution.executor import ExecutionOutcome, ExecutionStatus


def candidate(sql, rows, status=ExecutionStatus.OK, elapsed=0.01):
    return RefinedCandidate(
        raw_sql=sql,
        aligned_sql=sql,
        final_sql=sql,
        outcome=ExecutionOutcome(status=status, rows=rows, elapsed_seconds=elapsed),
    )


class TestVote:
    def test_majority_wins(self):
        winner = vote(
            [
                candidate("a", ((1,),)),
                candidate("b", ((2,),)),
                candidate("c", ((1,),)),
            ]
        )
        assert winner.final_sql in ("a", "c")

    def test_errors_excluded(self):
        winner = vote(
            [
                candidate("bad", (), status=ExecutionStatus.SYNTAX_ERROR),
                candidate("bad2", (), status=ExecutionStatus.SYNTAX_ERROR),
                candidate("good", ((5,),)),
            ]
        )
        assert winner.final_sql == "good"

    def test_empty_excluded(self):
        winner = vote(
            [
                candidate("empty", (), status=ExecutionStatus.EMPTY),
                candidate("good", ((5,),)),
            ]
        )
        assert winner.final_sql == "good"

    def test_all_invalid_returns_none(self):
        assert vote([candidate("e", (), status=ExecutionStatus.EMPTY)]) is None

    def test_tie_break_shortest_time(self):
        winner = vote(
            [
                candidate("slow", ((1,),), elapsed=0.5),
                candidate("fast", ((1,),), elapsed=0.001),
                candidate("other", ((2,),), elapsed=0.0001),
            ]
        )
        assert winner.final_sql == "fast"

    def test_row_order_insensitive_grouping(self):
        winner = vote(
            [
                candidate("a", ((1,), (2,))),
                candidate("b", ((2,), (1,))),
                candidate("c", ((3,),)),
            ]
        )
        assert winner.final_sql in ("a", "b")

    def test_single_candidate(self):
        assert vote([candidate("only", ((1,),))]).final_sql == "only"


@pytest.fixture(scope="module")
def refine_setup(tiny_benchmark, llm):
    from repro.core.extraction import Extractor
    from repro.core.preprocessing import Preprocessor

    config = PipelineConfig(n_candidates=3)
    databases, _library = Preprocessor(llm, config).preprocess_benchmark(
        tiny_benchmark
    )
    example = next(
        e for e in tiny_benchmark.dev if e.db_id == "healthcare"
    )
    pre = databases["healthcare"]
    extraction = Extractor(llm, config).run(example, pre)
    executor = tiny_benchmark.database("healthcare").executor()
    return config, example, pre, extraction, executor


class TestRefinerRun:
    def test_gold_sql_passes_through(self, refine_setup, llm):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(llm, config)
        result = refiner.run(
            example, [example.gold_sql], pre, extraction, executor
        )
        outcome = executor.execute(result.final_sql)
        gold = executor.execute(example.gold_sql)
        assert outcome.rows == gold.rows

    def test_dirty_value_aligned(self, refine_setup, llm, tiny_benchmark):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(llm, config)
        bad = (
            "SELECT COUNT(*) FROM Patient WHERE Patient.Diagnosis = 'behcet'"
        )
        result = refiner.run(example, [bad], pre, extraction, executor)
        assert "'BEHCET'" in result.final_sql

    def test_alignments_off_leaves_sql(self, refine_setup, llm):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(
            llm, config.with_(use_alignments=False, use_correction=False)
        )
        bad = "SELECT COUNT(*) FROM Patient WHERE Patient.Diagnosis = 'behcet'"
        result = refiner.run(example, [bad], pre, extraction, executor)
        assert result.candidates[0].aligned_sql == bad

    def test_unparseable_sql_survives_alignment(self, refine_setup, llm):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(llm, config)
        broken = "SELECT SELECT COUNT(*) FROM Patient"
        result = refiner.run(example, [broken], pre, extraction, executor)
        assert result.candidates  # no crash

    def test_first_refined_sql_is_candidate_zero(self, refine_setup, llm):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(llm, config)
        sqls = [example.gold_sql, "SELECT 1"]
        result = refiner.run(example, sqls, pre, extraction, executor)
        assert result.first_refined_sql == result.candidates[0].final_sql

    def test_vote_disabled_picks_first(self, refine_setup, llm):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(llm, config.with_(use_self_consistency=False))
        sqls = ["SELECT COUNT(*) FROM Patient", example.gold_sql]
        result = refiner.run(example, sqls, pre, extraction, executor)
        assert result.final_sql == result.candidates[0].final_sql

    def test_correction_attempted_on_error(self, refine_setup, llm):
        config, example, pre, extraction, executor = refine_setup
        refiner = Refiner(llm, config)
        # A fixable error: YEAR() is not a SQLite function.
        bad = "SELECT COUNT(*) FROM Patient WHERE YEAR(Patient.Birthday) >= 1990"
        result = refiner.run(example, [bad] * 4, pre, extraction, executor)
        assert any(c.corrected for c in result.candidates) or all(
            c.outcome.status.is_error for c in result.candidates
        )
