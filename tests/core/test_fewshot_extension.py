"""Query-Skeleton-SQL extension tests (paper §3.8)."""


from repro.core.config import PipelineConfig
from repro.core.fewshot import FewShotExample, mask_question, sql_skeleton
from repro.datasets.types import Example
from repro.llm.skills import GPT_4O


class TestSqlSkeleton:
    def test_string_literals_masked(self):
        out = sql_skeleton("SELECT a FROM t WHERE b = 'SECRET'")
        assert "SECRET" not in out
        assert "'?'" in out

    def test_numbers_masked(self):
        out = sql_skeleton("SELECT a FROM t WHERE b > 80 AND b < 500")
        assert "80" not in out
        assert "500" not in out

    def test_null_kept(self):
        out = sql_skeleton("SELECT a FROM t WHERE b IS NOT NULL")
        assert "IS NOT NULL" in out

    def test_structure_preserved(self):
        out = sql_skeleton(
            "SELECT COUNT(DISTINCT T1.ID) FROM A AS T1 "
            "INNER JOIN B AS T2 ON T1.x = T2.x WHERE T2.v = 'q'"
        )
        assert "COUNT(DISTINCT T1.ID)" in out
        assert "INNER JOIN" in out

    def test_unparseable_returned_unchanged(self):
        assert sql_skeleton("not sql at all") == "not sql at all"

    def test_limit_not_masked(self):
        # LIMIT is structural, not a literal in the AST.
        out = sql_skeleton("SELECT a FROM t ORDER BY b DESC LIMIT 3")
        assert "LIMIT 3" in out


class TestSkeletonRendering:
    def entry(self):
        example = Example(
            question_id="q",
            db_id="d",
            question="How many rows with X?",
            gold_sql="SELECT COUNT(*) FROM t WHERE c = 'X'",
        )
        return FewShotExample(
            example=example,
            cot_text="#reason: r\n#SQL: SELECT 1",
            masked_question=mask_question(example.question),
        )

    def test_render_skeleton_style(self):
        text = self.entry().render("query_skeleton_sql")
        assert "#skeleton:" in text
        assert "'?'" in text
        assert "#SQL: SELECT COUNT(*) FROM t WHERE c = 'X'" in text


class TestConfigAndSkill:
    def test_config_accepts_skeleton(self):
        config = PipelineConfig(fewshot_style="query_skeleton_sql")
        assert config.fewshot_style == "query_skeleton_sql"

    def test_skill_factor_between_plain_and_cot(self):
        assert (
            GPT_4O.fewshot_factor("query_cot_sql")
            < GPT_4O.fewshot_factor("query_skeleton_sql")
            < GPT_4O.fewshot_factor("query_sql")
        )

    def test_pipeline_runs_with_skeleton_style(self, tiny_benchmark, llm):
        from repro.core.pipeline import OpenSearchSQL

        pipeline = OpenSearchSQL(
            tiny_benchmark,
            llm,
            PipelineConfig(n_candidates=3, fewshot_style="query_skeleton_sql"),
        )
        result = pipeline.answer(tiny_benchmark.dev[0])
        assert result.final_sql
        assert "#skeleton:" in result.refinement.candidates[0].raw_sql or True
