"""Extraction stage tests: entities, values retrieval, column filtering,
info alignment and the ablation switches."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.extraction import Extractor
from repro.core.preprocessing import Preprocessor


@pytest.fixture(scope="module")
def pre(tiny_benchmark, llm):
    return Preprocessor(llm, PipelineConfig()).preprocess_database(
        tiny_benchmark.database("healthcare")
    )


@pytest.fixture(scope="module")
def dirty_example(tiny_benchmark):
    for example in tiny_benchmark.dev + tiny_benchmark.train:
        if example.db_id == "healthcare" and example.has_dirty_values:
            return example
    pytest.skip("no dirty healthcare example in tiny benchmark")


class TestFullExtraction:
    def test_values_retrieved_for_dirty_question(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig())
        result = extractor.run(dirty_example, pre)
        stored = {m.stored for m in dirty_example.value_mentions if m.is_dirty}
        provided = " ".join(result.provided_values)
        assert any(value in provided for value in stored)

    def test_schema_filtered(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig())
        result = extractor.run(dirty_example, pre)
        assert result.schema_filtered
        assert result.schema.column_count() <= pre.schema.column_count()

    def test_select_hints_produced(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig())
        result = extractor.run(dirty_example, pre)
        assert result.select_hints

    def test_schema_prompt_matches_subset(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig())
        result = extractor.run(dirty_example, pre)
        for table in result.schema.tables:
            assert table.name in result.schema_prompt


class TestSwitches:
    def test_extraction_off_passes_full_schema(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig(use_extraction=False))
        result = extractor.run(dirty_example, pre)
        assert result.schema is pre.schema
        assert result.values == []
        assert not result.schema_filtered

    def test_values_retrieval_off(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig(use_values_retrieval=False))
        result = extractor.run(dirty_example, pre)
        assert result.values == []

    def test_column_filtering_off_keeps_full_schema(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig(use_column_filtering=False))
        result = extractor.run(dirty_example, pre)
        assert result.schema.column_count() == pre.schema.column_count()

    def test_info_alignment_off_no_hints(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig(use_info_alignment=False))
        result = extractor.run(dirty_example, pre)
        assert result.select_hints == []


class TestInfoAlignment:
    def test_same_name_twins_added(self, llm, pre, dirty_example):
        extractor = Extractor(llm, PipelineConfig())
        keep = {"Patient": {"Diagnosis"}}
        expanded, _hints = extractor.info_alignment(
            dirty_example, pre, keep, values=[]
        )
        # Examination also has a Diagnosis column — the twin must be added.
        assert "Diagnosis" in expanded.get("Examination", set())

    def test_value_columns_added(self, llm, pre, dirty_example):
        from repro.core.extraction import RetrievedValue

        extractor = Extractor(llm, PipelineConfig())
        values = [RetrievedValue("Examination", "Symptoms", "FEVER", 0.9)]
        expanded, _hints = extractor.info_alignment(
            dirty_example, pre, {}, values=values
        )
        assert "Symptoms" in expanded.get("Examination", set())


class TestValuesRetrieval:
    def test_threshold_filters_noise(self, llm, pre):
        extractor = Extractor(llm, PipelineConfig(similarity_threshold=0.99))
        values = extractor.retrieve_values(["zzz qqq xxx"], pre)
        assert values == []

    def test_split_retrieval_for_long_phrases(self, llm, pre):
        extractor = Extractor(llm, PipelineConfig())
        # A long phrase whose halves match stored values better than the whole.
        values = extractor.retrieve_values(
            ["patients who were diagnosed with behcet disease type"], pre
        )
        assert any(v.value == "BEHCET" for v in values)

    def test_results_sorted_by_score(self, llm, pre):
        extractor = Extractor(llm, PipelineConfig(similarity_threshold=0.3))
        values = extractor.retrieve_values(["sle"], pre)
        scores = [v.score for v in values]
        assert scores == sorted(scores, reverse=True)
