"""Alignment rule tests: agent, function and style alignment rewrites."""

import pytest

from repro.core.alignment import (
    agent_alignment,
    apply_alignments,
    function_alignment,
    style_alignment,
)
from repro.core.config import PipelineConfig
from repro.core.preprocessing import Preprocessor
from repro.embedding.vectorizer import HashingVectorizer
from repro.sqlkit.parser import parse_select
from repro.sqlkit.render import render


@pytest.fixture(scope="module")
def pre(tiny_benchmark, llm):
    return Preprocessor(llm, PipelineConfig()).preprocess_database(
        tiny_benchmark.database("healthcare")
    )


@pytest.fixture(scope="module")
def executor(tiny_benchmark):
    return tiny_benchmark.database("healthcare").executor()


@pytest.fixture(scope="module")
def vec():
    return HashingVectorizer()


class TestAgentAlignment:
    def test_case_mismatch_fixed(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Patient WHERE Patient.Diagnosis = 'behcet'"
        )
        fixed = agent_alignment(select, pre, executor, vec)
        assert "'BEHCET'" in render(fixed)

    def test_existing_value_untouched(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Patient WHERE Patient.Diagnosis = 'BEHCET'"
        )
        assert agent_alignment(select, pre, executor, vec) == select

    def test_aliased_table_resolved(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Patient AS T1 WHERE T1.Diagnosis = 'behcet'"
        )
        fixed = agent_alignment(select, pre, executor, vec)
        assert "'BEHCET'" in render(fixed)

    def test_numeric_literal_untouched(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Laboratory WHERE Laboratory.IGA = 80"
        )
        assert agent_alignment(select, pre, executor, vec) == select

    def test_reversed_operands_handled(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Patient WHERE 'behcet' = Patient.Diagnosis"
        )
        fixed = agent_alignment(select, pre, executor, vec)
        assert "'BEHCET'" in render(fixed)

    def test_gibberish_not_fixed(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Patient WHERE Patient.Diagnosis = 'qqqqzzzz'"
        )
        assert agent_alignment(select, pre, executor, vec) == select


class TestFunctionAlignment:
    def test_order_by_max_unwrapped(self):
        select = parse_select("SELECT id FROM t ORDER BY MAX(score) DESC LIMIT 1")
        fixed = function_alignment(select)
        assert render(fixed) == "SELECT id FROM t ORDER BY score DESC LIMIT 1"

    def test_grouped_query_untouched(self):
        select = parse_select(
            "SELECT id FROM t GROUP BY id ORDER BY MAX(score) DESC"
        )
        assert function_alignment(select) == select

    def test_plain_order_untouched(self):
        select = parse_select("SELECT id FROM t ORDER BY score")
        assert function_alignment(select) == select

    def test_count_star_untouched(self):
        # COUNT(*) has a Star argument, not a ColumnRef — leave it alone.
        select = parse_select("SELECT id FROM t ORDER BY COUNT(*) DESC")
        assert function_alignment(select) == select


class TestStyleAlignment:
    def test_not_null_guard_added(self, pre):
        select = parse_select(
            "SELECT Laboratory.ID FROM Laboratory "
            "ORDER BY Laboratory.GLU ASC LIMIT 1"
        )
        fixed = style_alignment(select, pre)
        assert "GLU IS NOT NULL" in render(fixed)

    def test_guard_not_duplicated(self, pre):
        select = parse_select(
            "SELECT Laboratory.ID FROM Laboratory "
            "WHERE Laboratory.GLU IS NOT NULL "
            "ORDER BY Laboratory.GLU ASC LIMIT 1"
        )
        assert style_alignment(select, pre) == select

    def test_primary_key_needs_no_guard(self, pre):
        select = parse_select(
            "SELECT Patient.SEX FROM Patient ORDER BY Patient.ID DESC LIMIT 1"
        )
        assert style_alignment(select, pre) == select

    def test_no_limit_no_guard(self, pre):
        select = parse_select(
            "SELECT Laboratory.ID FROM Laboratory ORDER BY Laboratory.GLU"
        )
        assert style_alignment(select, pre) == select

    def test_duplicate_select_items_removed(self, pre):
        select = parse_select("SELECT Patient.SEX, Patient.SEX FROM Patient")
        fixed = style_alignment(select, pre)
        assert len(fixed.items) == 1

    def test_max_vs_limit_rewritten(self, pre):
        select = parse_select(
            "SELECT Laboratory.ID, MAX(Laboratory.GLU) FROM Laboratory"
        )
        fixed = style_alignment(select, pre)
        text = render(fixed)
        assert "MAX(" not in text
        assert "ORDER BY Laboratory.GLU DESC LIMIT 1" in text
        # And the nullable guard comes along.
        assert "IS NOT NULL" in text

    def test_min_variant(self, pre):
        select = parse_select(
            "SELECT Laboratory.ID, MIN(Laboratory.GLU) FROM Laboratory"
        )
        fixed = style_alignment(select, pre)
        assert "ORDER BY Laboratory.GLU LIMIT 1" in render(fixed)

    def test_grouped_aggregate_untouched(self, pre):
        select = parse_select(
            "SELECT Patient.Diagnosis, MAX(Patient.ID) FROM Patient "
            "GROUP BY Patient.Diagnosis"
        )
        assert style_alignment(select, pre) == select


class TestApplyAlignments:
    def test_combined_fix(self, pre, executor, vec):
        select = parse_select(
            "SELECT Patient.SEX FROM Patient "
            "WHERE Patient.Diagnosis = 'behcet' "
            "ORDER BY MAX(Patient.Birthday) DESC LIMIT 1"
        )
        fixed = apply_alignments(select, pre, executor, vec)
        text = render(fixed)
        assert "'BEHCET'" in text
        assert "MAX(" not in text

    def test_clean_sql_is_fixed_point(self, pre, executor, vec):
        select = parse_select(
            "SELECT COUNT(*) FROM Patient WHERE Patient.Diagnosis = 'BEHCET'"
        )
        once = apply_alignments(select, pre, executor, vec)
        twice = apply_alignments(once, pre, executor, vec)
        assert once == twice
