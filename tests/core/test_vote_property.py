"""Property-based tests of the self-consistency vote (paper Eq. 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refinement import RefinedCandidate, vote
from repro.execution.executor import ExecutionOutcome, ExecutionStatus


@st.composite
def candidates(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    out = []
    for i in range(n):
        status = draw(
            st.sampled_from(
                [
                    ExecutionStatus.OK,
                    ExecutionStatus.EMPTY,
                    ExecutionStatus.SYNTAX_ERROR,
                ]
            )
        )
        rows = ()
        if status is ExecutionStatus.OK:
            value = draw(st.integers(min_value=0, max_value=3))
            rows = ((value,),)
        out.append(
            RefinedCandidate(
                raw_sql=f"sql{i}",
                aligned_sql=f"sql{i}",
                final_sql=f"sql{i}",
                outcome=ExecutionOutcome(
                    status=status,
                    rows=rows,
                    elapsed_seconds=draw(
                        st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
                    ),
                ),
            )
        )
    return out


def result_key(candidate):
    return tuple(sorted(candidate.outcome.rows))


class TestVoteProperties:
    @settings(max_examples=200, deadline=None)
    @given(candidates())
    def test_winner_is_valid_or_none(self, cands):
        winner = vote(cands)
        ok = [c for c in cands if c.outcome.status is ExecutionStatus.OK]
        if not ok:
            assert winner is None
        else:
            assert winner in ok

    @settings(max_examples=200, deadline=None)
    @given(candidates())
    def test_winner_belongs_to_a_largest_group(self, cands):
        winner = vote(cands)
        ok = [c for c in cands if c.outcome.status is ExecutionStatus.OK]
        if winner is None:
            return
        sizes = {}
        for c in ok:
            sizes[result_key(c)] = sizes.get(result_key(c), 0) + 1
        assert sizes[result_key(winner)] == max(sizes.values())

    @settings(max_examples=200, deadline=None)
    @given(candidates())
    def test_winner_fastest_within_group(self, cands):
        winner = vote(cands)
        if winner is None:
            return
        group = [
            c
            for c in cands
            if c.outcome.status is ExecutionStatus.OK
            and result_key(c) == result_key(winner)
        ]
        assert winner.outcome.elapsed_seconds == min(
            c.outcome.elapsed_seconds for c in group
        )

    @settings(max_examples=100, deadline=None)
    @given(candidates())
    def test_duplicating_the_winning_group_keeps_it_winning(self, cands):
        winner = vote(cands)
        if winner is None:
            return
        boosted = cands + [winner, winner]
        assert result_key(vote(boosted)) == result_key(winner)

    @settings(max_examples=100, deadline=None)
    @given(candidates())
    def test_order_of_errors_irrelevant(self, cands):
        winner = vote(cands)
        errors = [c for c in cands if c.outcome.status is not ExecutionStatus.OK]
        valid = [c for c in cands if c.outcome.status is ExecutionStatus.OK]
        reshuffled = errors + valid
        other = vote(reshuffled)
        if winner is None:
            assert other is None
        else:
            assert result_key(other) == result_key(winner)
