"""Preprocessing stage tests: value/column indexing and few-shot building."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.cost import CostTracker
from repro.core.preprocessing import CORRECTION_FEWSHOTS, Preprocessor, ValueEntry


@pytest.fixture(scope="module")
def preprocessed(tiny_benchmark, llm):
    pre = Preprocessor(llm, PipelineConfig())
    return pre.preprocess_database(tiny_benchmark.database("healthcare"))


class TestDatabasePreprocessing:
    def test_only_string_columns_indexed(self, preprocessed):
        """The paper indexes string values only, to save space."""
        for key in getattr(preprocessed.value_index, "_keys", []):
            entry_table, rest = key.split(".", 1)
            column = rest.split("=", 1)[0]
            col = preprocessed.schema.table(entry_table).column(column)
            assert col.is_text

    def test_value_lookup_bridges_case(self, preprocessed, llm):
        from repro.embedding.vectorizer import HashingVectorizer

        vec = HashingVectorizer()
        hits = preprocessed.value_index.search(vec.embed("behcet"), k=1)
        entry = hits[0].payload
        assert isinstance(entry, ValueEntry)
        assert entry.value == "BEHCET"

    def test_column_index_covers_all_columns(self, preprocessed):
        assert len(preprocessed.column_index) == preprocessed.schema.column_count()

    def test_schema_prompt_rendered(self, preprocessed):
        assert "Patient" in preprocessed.schema_prompt

    def test_value_count_positive(self, preprocessed):
        assert preprocessed.value_count > 0


class TestFewShotBuilding:
    def test_library_covers_train(self, tiny_benchmark, llm):
        pre = Preprocessor(llm, PipelineConfig())
        schemas = {
            db_id: built.schema
            for db_id, built in tiny_benchmark.databases.items()
        }
        cost = CostTracker()
        library = pre.build_fewshot_library(tiny_benchmark.train, schemas, cost)
        assert len(library) == len(tiny_benchmark.train)
        assert cost.stage("preprocessing").calls == len(tiny_benchmark.train)

    def test_entries_have_cot(self, tiny_pipeline):
        library = tiny_pipeline.library
        hit = library.search("How many patients were diagnosed with RA?", k=1)[0]
        assert "#SQL-like:" in hit.cot_text

    def test_preprocess_benchmark(self, tiny_benchmark, llm):
        pre = Preprocessor(llm, PipelineConfig())
        databases, library = pre.preprocess_benchmark(tiny_benchmark)
        assert set(databases) == {"healthcare", "hockey"}
        assert len(library) == len(tiny_benchmark.train)

    def test_hnsw_index_kind(self, tiny_benchmark, llm):
        pre = Preprocessor(llm, PipelineConfig(vector_index="hnsw"))
        processed = pre.preprocess_database(tiny_benchmark.database("hockey"))
        from repro.embedding.hnsw import HNSWIndex

        assert isinstance(processed.value_index, HNSWIndex)


class TestCorrectionFewshots:
    def test_all_error_kinds_covered(self):
        from repro.core.refinement import _INFRASTRUCTURE_STATUSES
        from repro.execution.executor import ExecutionStatus

        for status in ExecutionStatus:
            if status is ExecutionStatus.OK:
                continue
            if status in _INFRASTRUCTURE_STATUSES:
                # locked/disk/connection faults never reach correction
                # prompting (the refiner skips them), so no few-shot exists
                continue
            key = "empty" if status is ExecutionStatus.EMPTY else status.value
            assert key in CORRECTION_FEWSHOTS

    def test_fewshots_follow_listing3_format(self):
        for text in CORRECTION_FEWSHOTS.values():
            assert "#question:" in text
            assert "#Error SQL:" in text
            assert "#SQL:" in text
