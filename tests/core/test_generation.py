"""Generation stage tests: prompts, features honesty, candidate parsing."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.extraction import Extractor
from repro.core.generation import Generator, parse_sql_from_completion
from repro.core.preprocessing import Preprocessor


@pytest.fixture(scope="module")
def setup(tiny_benchmark, llm):
    config = PipelineConfig(n_candidates=3)
    preprocessor = Preprocessor(llm, config)
    databases, library = preprocessor.preprocess_benchmark(tiny_benchmark)
    return config, databases, library


@pytest.fixture(scope="module")
def dev_example(tiny_benchmark):
    return tiny_benchmark.dev[0]


class TestParseCompletion:
    def test_sql_line_extracted(self):
        assert parse_sql_from_completion("#reason: x\n#SQL: SELECT 1") == "SELECT 1"

    def test_last_sql_line_wins(self):
        text = "#SQL: SELECT old\nmore\n#SQL: SELECT new"
        assert parse_sql_from_completion(text) == "SELECT new"

    def test_fallback_to_select_line(self):
        assert parse_sql_from_completion("blah\nSELECT 2 FROM t") == "SELECT 2 FROM t"

    def test_no_sql_returns_none(self):
        assert parse_sql_from_completion("no sql here") is None


class TestGenerator:
    def test_candidates_generated(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        result = Generator(llm, config).run(dev_example, extraction, library)
        assert len(result.candidates) == 3
        assert result.sqls

    def test_features_reflect_prompt(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        result = Generator(llm, config).run(dev_example, extraction, library)
        features = result.features
        # Honesty invariants: features must match the rendered prompt.
        assert features.schema_column_count == extraction.schema.column_count()
        assert features.schema_table_count == len(extraction.schema.tables)
        assert features.fewshot_kind == "query_cot_sql"
        for value in features.provided_values:
            assert value in result.prompt
        assert (len(extraction.select_hints) > 0) == features.select_hints

    def test_prompt_contains_fewshots(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        result = Generator(llm, config).run(dev_example, extraction, library)
        assert "/* Some examples */" in result.prompt
        assert "#SQL-like:" in result.prompt  # CoT-form shots

    def test_fewshot_none_omits_examples(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, library = setup
        no_fs = config.with_(fewshot_style="none")
        extractor = Extractor(llm, no_fs)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        result = Generator(llm, no_fs).run(dev_example, extraction, library)
        assert "/* Some examples */" not in result.prompt
        assert result.features.fewshot_kind == "none"

    def test_cot_mode_in_prompt(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        for mode, marker in (
            ("structured", "#SQL-like:"),
            ("unstructured", "think step by step"),
        ):
            cfg = config.with_(cot_mode=mode)
            result = Generator(llm, cfg).run(dev_example, extraction, library)
            assert marker in result.prompt

    def test_n_override(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        result = Generator(llm, config).run(
            dev_example, extraction, library, n_candidates=7
        )
        assert len(result.candidates) == 7

    def test_cost_recorded(self, setup, tiny_benchmark, llm, dev_example):
        from repro.core.cost import CostTracker

        config, databases, library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        cost = CostTracker()
        Generator(llm, config).run(dev_example, extraction, library, cost)
        assert cost.stage("generation").total_tokens > 0


class TestFeatureHonesty:
    def test_empty_library_reports_no_fewshot(self, setup, tiny_benchmark, llm, dev_example):
        from repro.core.fewshot import FewShotLibrary

        config, databases, _library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        empty = FewShotLibrary()
        result = Generator(llm, config).run(dev_example, extraction, empty)
        assert result.features.fewshot_kind == "none"
        assert "/* Some examples */" not in result.prompt

    def test_missing_library_reports_no_fewshot(self, setup, tiny_benchmark, llm, dev_example):
        config, databases, _library = setup
        extractor = Extractor(llm, config)
        extraction = extractor.run(dev_example, databases[dev_example.db_id])
        result = Generator(llm, config).run(dev_example, extraction, library=None)
        assert result.features.fewshot_kind == "none"
