"""Property tests for the alignment stack: idempotence and safety on the
SQL shapes the pipeline actually emits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import apply_alignments, function_alignment, style_alignment
from repro.core.config import PipelineConfig
from repro.core.preprocessing import Preprocessor
from repro.embedding.vectorizer import HashingVectorizer
from repro.sqlkit.parser import parse_select
from repro.sqlkit.render import render


@pytest.fixture(scope="module")
def pre(tiny_benchmark, llm):
    return Preprocessor(llm, PipelineConfig()).preprocess_database(
        tiny_benchmark.database("healthcare")
    )


@pytest.fixture(scope="module")
def executor(tiny_benchmark):
    return tiny_benchmark.database("healthcare").executor()


@pytest.fixture(scope="module")
def vec():
    return HashingVectorizer()


_COLUMNS = ("Patient.SEX", "Patient.Diagnosis", "Laboratory.IGA", "Laboratory.GLU")
_VALUES = ("BEHCET", "behcet", "sle", "F", "nonexistent thing")


@st.composite
def candidate_sqls(draw):
    """SQL shapes representative of what the generator produces."""
    column = draw(st.sampled_from(_COLUMNS))
    table = column.split(".")[0]
    value = draw(st.sampled_from(_VALUES))
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        return f"SELECT COUNT(*) FROM {table} WHERE {column} = '{value}'"
    if shape == 1:
        return (
            f"SELECT {column} FROM {table} "
            f"ORDER BY MAX({column}) DESC LIMIT 1"
        )
    if shape == 2:
        return (
            "SELECT Laboratory.ID FROM Laboratory "
            "ORDER BY Laboratory.GLU ASC LIMIT 1"
        )
    return "SELECT Laboratory.ID, MAX(Laboratory.GLU) FROM Laboratory"


class TestAlignmentProperties:
    @settings(max_examples=60, deadline=None)
    @given(sql=candidate_sqls())
    def test_idempotent(self, pre, executor, vec, sql):
        select = parse_select(sql)
        once = apply_alignments(select, pre, executor, vec)
        twice = apply_alignments(once, pre, executor, vec)
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(sql=candidate_sqls())
    def test_output_parses_and_never_errors_harder(self, pre, executor, vec, sql):
        select = parse_select(sql)
        aligned = apply_alignments(select, pre, executor, vec)
        rendered = render(aligned)
        parse_select(rendered)  # still valid SQL in our dialect
        before = executor.execute(sql)
        after = executor.execute(rendered)
        # Alignment must never turn an executable query into an error.
        if not before.status.is_error:
            assert not after.status.is_error

    @settings(max_examples=60, deadline=None)
    @given(sql=candidate_sqls())
    def test_function_then_style_stable(self, pre, executor, vec, sql):
        select = parse_select(sql)
        out = style_alignment(function_alignment(select), pre)
        again = style_alignment(function_alignment(out), pre)
        assert out == again
