"""Dynamic few-shot tests: question masking and MQs retrieval."""

import pytest

from repro.core.fewshot import FewShotExample, FewShotLibrary, mask_question
from repro.datasets.types import Example


class TestMaskQuestion:
    def test_known_surfaces_masked(self):
        masked = mask_question(
            "How many patients have SLE?", surfaces=("SLE",)
        )
        assert "SLE" not in masked
        assert "<mask>" in masked

    def test_numbers_masked(self):
        masked = mask_question("How many orders after 2019?")
        assert "2019" not in masked

    def test_quoted_strings_masked(self):
        masked = mask_question("Who is called 'John Smith'?")
        assert "John Smith" not in masked

    def test_structure_preserved(self):
        masked = mask_question("How many patients have SLE?", surfaces=("SLE",))
        assert masked.startswith("How many patients have")

    def test_longest_surface_first(self):
        masked = mask_question(
            "X and X Y here", surfaces=("X", "X Y")
        )
        assert masked.count("<mask>") == 2

    def test_same_template_same_mask(self):
        a = mask_question("How many players play as a Goalie?", ("Goalie",))
        b = mask_question("How many players play as a Center?", ("Center",))
        assert a == b


def entry(qid, question, template_id, surfaces=(), db_id="db"):
    example = Example(
        question_id=qid,
        db_id=db_id,
        question=question,
        gold_sql="SELECT 1",
        template_id=template_id,
    )
    return FewShotExample(
        example=example,
        cot_text="#reason: ...\n#SQL: SELECT 1",
        masked_question=mask_question(question, surfaces),
    )


@pytest.fixture
def library():
    lib = FewShotLibrary()
    lib.add(entry("a1", "How many players play as a Goalie?", "t:count", ("Goalie",)))
    lib.add(entry("a2", "How many players play as a Center?", "t:count", ("Center",)))
    lib.add(entry("b1", "List the names of players from Peru.", "t:list", ("Peru",)))
    lib.add(entry("c1", "Which team has the most wins?", "t:top"))
    return lib


class TestLibrary:
    def test_len(self, library):
        assert len(library) == 4

    def test_duplicate_rejected(self, library):
        with pytest.raises(ValueError):
            library.add(entry("a1", "dup", "t:x"))

    def test_same_family_ranked_first(self, library):
        hits = library.search(
            "How many players play as a Defenseman?", surfaces=("Defenseman",), k=2
        )
        assert hits[0].example.template_id == "t:count"

    def test_k_respected(self, library):
        assert len(library.search("How many players?", k=2)) == 2

    def test_k_zero(self, library):
        assert library.search("anything", k=0) == []

    def test_empty_library(self):
        assert FewShotLibrary().search("anything") == []

    def test_db_filter(self, library):
        hits = library.search("How many players?", k=4, db_id="other")
        assert hits == []

    def test_hnsw_backend(self):
        lib = FewShotLibrary(index_kind="hnsw")
        lib.add(entry("x", "How many things?", "t:q"))
        assert lib.search("How many stuff?", k=1)


class TestRender:
    def test_query_sql_format(self, library):
        (hit,) = library.search("How many players play as a Wing?", k=1)
        text = hit.render("query_sql")
        assert text.startswith("/* Answer the following:")
        assert "#SQL: SELECT 1" in text

    def test_query_cot_sql_format(self, library):
        (hit,) = library.search("How many players play as a Wing?", k=1)
        text = hit.render("query_cot_sql")
        assert "#reason:" in text

    def test_unknown_style_rejected(self, library):
        (hit,) = library.search("How many?", k=1)
        with pytest.raises(ValueError):
            hit.render("bogus")
