"""Checkpoint/resume: JSONL round-trips, torn-write tolerance, per-example
error isolation, and the kill-and-resume == uninterrupted-run guarantee."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.core.cost import CostTracker
from repro.evaluation.metrics import ExampleScore
from repro.evaluation.runner import evaluate_pipeline, evaluate_system
from repro.llm.base import TokenUsage
from repro.reliability.checkpoint import (
    EvalCheckpoint,
    decode_cost,
    decode_score,
    encode_cost,
    encode_score,
)
from repro.reliability.degradation import DegradationEvent, DegradationKind


class PipelineProxy:
    """Delegating wrapper so tests can observe/introduce behavior."""

    def __init__(self, inner):
        self._inner = inner
        self.answered = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def answer(self, example):
        self.answered.append(example.question_id)
        return self._inner.answer(example)


class CrashingPipeline(PipelineProxy):
    def __init__(self, inner, crash_ids):
        super().__init__(inner)
        self.crash_ids = set(crash_ids)

    def answer(self, example):
        if example.question_id in self.crash_ids:
            raise RuntimeError("simulated pipeline crash")
        return super().answer(example)


def score_rows(report):
    return [(s.question_id, s.correct, s.predicted_status) for s in report.scores]


class TestEncoding:
    def test_score_round_trip(self):
        score = ExampleScore(
            question_id="q1",
            correct=True,
            gold_time=0.01,
            predicted_time=0.02,
            predicted_status="ok",
            difficulty="simple",
        )
        assert decode_score(encode_score(score)) == score
        assert encode_score(None) is None and decode_score(None) is None

    def test_error_field_survives(self):
        score = ExampleScore(
            question_id="q2",
            correct=False,
            gold_time=0.0,
            predicted_status="crashed",
            difficulty="simple",
            error="RuntimeError: boom",
        )
        assert decode_score(encode_score(score)).error == "RuntimeError: boom"

    def test_cost_round_trip_is_lossless(self):
        cost = CostTracker()
        stage = cost.stage("generation")
        stage.wall_seconds = 1.23456789
        stage.model_seconds = 0.987
        stage.usage = TokenUsage(123, 45)
        stage.calls = 7
        decoded = decode_cost(encode_cost(cost))
        redecoded = decoded.stage("generation")
        assert redecoded.wall_seconds == 1.23456789
        assert redecoded.usage.prompt_tokens == 123
        assert redecoded.usage.completion_tokens == 45
        assert redecoded.calls == 7


class TestCheckpointFile:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = EvalCheckpoint(path)
        score = ExampleScore(
            question_id="q1", correct=True, gold_time=0.1, difficulty="simple"
        )
        checkpoint.record_example(
            "q1",
            score=score,
            degradations=[
                DegradationEvent(
                    kind=DegradationKind.REFINEMENT_SKIPPED, stage="refinement"
                )
            ],
        )
        reloaded = EvalCheckpoint(path)
        assert len(reloaded) == 1 and "q1" in reloaded
        decoded, _, _, _, degradations = EvalCheckpoint.decode(reloaded.get("q1"))
        assert decoded == score
        assert degradations[0].kind is DegradationKind.REFINEMENT_SKIPPED

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        EvalCheckpoint(path).record_example("q1")
        assert path.exists()

    def test_torn_tail_line_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = EvalCheckpoint(path)
        checkpoint.record_example("q1")
        checkpoint.record_example("q2")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"question_id": "q3", "sco')  # killed mid-write
        reloaded = EvalCheckpoint(path)
        assert len(reloaded) == 2
        assert "q3" not in reloaded

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        EvalCheckpoint(path).record_example("q1")
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(EvalCheckpoint(path)) == 1

    def test_latest_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = EvalCheckpoint(path)
        checkpoint.record_example("q1", error="RuntimeError: first try")
        checkpoint.record_example("q1", error=None)
        assert EvalCheckpoint(path).get("q1")["error"] is None

    def test_lines_are_valid_json_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        EvalCheckpoint(path).record_example("q1")
        record = json.loads(path.read_text().splitlines()[0])
        assert record["question_id"] == "q1"
        assert "version" in record

    def test_torn_line_in_the_middle_skipped(self, tmp_path):
        # a torn write is usually the tail, but a crash during a buffered
        # multi-line flush can leave the damage mid-file: every intact
        # record around it must survive the reload
        path = tmp_path / "run.jsonl"
        checkpoint = EvalCheckpoint(path)
        for question_id in ("q1", "q2", "q3"):
            checkpoint.record_example(question_id)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        reloaded = EvalCheckpoint(path)
        assert len(reloaded) == 2
        assert "q1" in reloaded and "q3" in reloaded
        assert "q2" not in reloaded

    def test_fsync_every_n_flushes_and_keeps_recording(self, tmp_path):
        path = tmp_path / "run.jsonl"
        checkpoint = EvalCheckpoint(path, fsync_every_n=2)
        for question_id in ("q1", "q2", "q3", "q4", "q5"):
            checkpoint.record_example(question_id)
        assert len(EvalCheckpoint(path)) == 5

    def test_fsync_every_n_validated(self, tmp_path):
        with pytest.raises(ValueError):
            EvalCheckpoint(tmp_path / "run.jsonl", fsync_every_n=-1)


class TestErrorIsolation:
    def test_crashed_example_scores_zero_and_run_continues(
        self, rel_pipeline, tiny_benchmark
    ):
        examples = tiny_benchmark.dev[:4]
        crashing = CrashingPipeline(rel_pipeline, [examples[1].question_id])
        report = evaluate_pipeline(crashing, examples)
        assert report.count == 4
        crashed = report.scores[1]
        assert not crashed.correct
        assert crashed.predicted_status == "crashed"
        assert "simulated pipeline crash" in crashed.error
        assert len(report.errors) == 1
        # the other three examples were evaluated normally
        assert [s.error for s in report.scores].count(None) == 3

    def test_crash_recorded_in_checkpoint(self, rel_pipeline, tiny_benchmark, tmp_path):
        examples = tiny_benchmark.dev[:2]
        path = tmp_path / "run.jsonl"
        crashing = CrashingPipeline(rel_pipeline, [examples[0].question_id])
        evaluate_pipeline(crashing, examples, checkpoint_path=path)
        record = EvalCheckpoint(path).get(examples[0].question_id)
        assert "simulated pipeline crash" in record["error"]


class TestResume:
    def test_kill_and_resume_matches_uninterrupted_run(
        self, rel_pipeline, tiny_benchmark, tmp_path
    ):
        examples = tiny_benchmark.dev[:6]
        path = tmp_path / "run.jsonl"

        uninterrupted = evaluate_pipeline(rel_pipeline, examples, name="ref")

        # "Killed" run: only the first three examples finished.
        partial = evaluate_pipeline(
            rel_pipeline, examples[:3], name="ref", checkpoint_path=path
        )
        resumed = evaluate_pipeline(
            rel_pipeline, examples, name="ref", checkpoint_path=path
        )

        assert score_rows(resumed) == score_rows(uninterrupted)
        assert resumed.ex == uninterrupted.ex
        assert resumed.ex_g == uninterrupted.ex_g
        assert resumed.ex_r == uninterrupted.ex_r
        # replayed scores are bit-identical to what the killed run computed
        for replayed, original in zip(resumed.scores[:3], partial.scores):
            assert asdict(replayed) == asdict(original)

    def test_resume_does_not_rerun_finished_examples(
        self, rel_pipeline, tiny_benchmark, tmp_path
    ):
        examples = tiny_benchmark.dev[:4]
        path = tmp_path / "run.jsonl"
        evaluate_pipeline(rel_pipeline, examples[:2], checkpoint_path=path)

        proxy = PipelineProxy(rel_pipeline)
        evaluate_pipeline(proxy, examples, checkpoint_path=path)
        assert proxy.answered == [e.question_id for e in examples[2:]]

    def test_resume_replays_cost_and_degradations(
        self, rel_pipeline, tiny_benchmark, tmp_path, monkeypatch
    ):
        example = tiny_benchmark.dev[0]
        path = tmp_path / "run.jsonl"

        def explode(*args, **kwargs):
            raise RuntimeError("refiner down")

        monkeypatch.setattr(rel_pipeline.refiner, "run", explode)
        first = evaluate_pipeline(rel_pipeline, [example], checkpoint_path=path)
        monkeypatch.undo()

        proxy = PipelineProxy(rel_pipeline)
        resumed = evaluate_pipeline(proxy, [example], checkpoint_path=path)
        assert proxy.answered == []
        assert resumed.degradation_counts() == {"refinement_skipped": 1}
        assert resumed.degradations == first.degradations
        assert resumed.cost.summary() == first.cost.summary()


class TestSystemRunner:
    class GoldSystem:
        name = "gold-echo"

        def __init__(self):
            self.answered = []

        def answer(self, example):
            self.answered.append(example.question_id)
            return example.gold_sql

    class CrashOnFirst(GoldSystem):
        name = "crash-once"

        def answer(self, example):
            if not self.answered:
                self.answered.append(example.question_id)
                raise ValueError("bad system")
            return super().answer(example)

    def test_gold_system_scores_perfectly(self, tiny_benchmark):
        report = evaluate_system(
            self.GoldSystem(), tiny_benchmark, tiny_benchmark.dev[:5]
        )
        assert report.ex == 100.0

    def test_system_crash_isolated(self, tiny_benchmark):
        report = evaluate_system(
            self.CrashOnFirst(), tiny_benchmark, tiny_benchmark.dev[:3]
        )
        assert report.count == 3
        assert len(report.errors) == 1
        assert report.scores[0].predicted_status == "crashed"

    def test_system_checkpoint_resume(self, tiny_benchmark, tmp_path):
        examples = tiny_benchmark.dev[:4]
        path = tmp_path / "system.jsonl"
        first = evaluate_system(
            self.GoldSystem(), tiny_benchmark, examples, checkpoint_path=path
        )
        system = self.GoldSystem()
        resumed = evaluate_system(
            system, tiny_benchmark, examples, checkpoint_path=path
        )
        assert system.answered == []  # everything replayed from disk
        assert score_rows(resumed) == score_rows(first)

    def test_save_json_creates_parent_dirs(self, tiny_benchmark, tmp_path):
        report = evaluate_system(
            self.GoldSystem(), tiny_benchmark, tiny_benchmark.dev[:2]
        )
        target = tmp_path / "reports" / "nested" / "out.json"
        report.save_json(target)
        payload = json.loads(target.read_text())
        assert payload["count"] == 2
        assert "degradations" in payload and "errors" in payload
