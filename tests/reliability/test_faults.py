"""Fault taxonomy and deterministic injection tests."""

import pytest

from repro.llm.base import LLMResponse, TokenUsage
from repro.reliability.faults import (
    CONTENT_FAULTS,
    TRANSPORT_FAULTS,
    BudgetExceededError,
    CircuitOpenError,
    FaultKind,
    RateLimitError,
    ServiceUnavailableError,
    TransientTimeoutError,
    TransportFault,
)
from repro.reliability.injection import FaultInjectingLLM, FaultPlan


class EchoLLM:
    """Minimal deterministic client for wrapper tests."""

    model_name = "echo"

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        self.calls += 1
        return [
            LLMResponse(
                text=f"#SQL: SELECT {index} -- {prompt[:20]}",
                usage=TokenUsage(10, 5),
                model=self.model_name,
                latency_seconds=0.1,
            )
            for index in range(n)
        ]


class TestTaxonomy:
    def test_transport_kinds_are_exceptions(self):
        for exc_type in (RateLimitError, TransientTimeoutError, ServiceUnavailableError):
            exc = exc_type()
            assert isinstance(exc, TransportFault)
            assert exc.retryable
            assert exc.kind in TRANSPORT_FAULTS
            assert exc.kind.is_transport

    def test_non_retryable_faults(self):
        assert not BudgetExceededError("spent").retryable
        assert not CircuitOpenError("open").retryable

    def test_content_kinds_are_not_transport(self):
        for kind in CONTENT_FAULTS:
            assert not kind.is_transport

    def test_every_kind_classified(self):
        assert TRANSPORT_FAULTS | CONTENT_FAULTS == set(FaultKind)

    def test_rate_limit_carries_retry_after(self):
        assert RateLimitError(retry_after=2.5).retry_after == 2.5


class TestFaultPlan:
    def test_transient_plan_total(self):
        plan = FaultPlan.transient(0.2)
        assert plan.transport_rate() == pytest.approx(0.2)
        assert plan.truncated == plan.empty == plan.malformed == 0.0

    def test_content_plan_has_no_transport(self):
        plan = FaultPlan.content(0.3)
        assert plan.transport_rate() == 0.0
        assert plan.truncated + plan.empty + plan.malformed == pytest.approx(0.3)

    def test_chaos_plan_has_both(self):
        plan = FaultPlan.chaos(0.2)
        assert plan.transport_rate() > 0
        assert plan.truncated > 0 and plan.latency_spike > 0


class TestInjection:
    def test_zero_rate_is_transparent(self):
        inner = EchoLLM()
        wrapped = FaultInjectingLLM(inner, FaultPlan(), seed=7)
        responses = wrapped.complete("hello", n=3)
        assert [r.text for r in responses] == [
            r.text for r in inner.complete("hello", n=3)
        ]
        assert wrapped.stats.faults == []

    def test_always_rate_limits(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan(rate_limit=1.0), seed=0)
        with pytest.raises(RateLimitError):
            wrapped.complete("p")
        assert wrapped.stats.fault_counts() == {"rate_limit": 1}

    def test_always_times_out(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan(timeout=1.0), seed=0)
        with pytest.raises(TransientTimeoutError):
            wrapped.complete("p")

    def test_empty_completion_injected(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan(empty=1.0), seed=0)
        responses = wrapped.complete("p", n=1)
        assert responses[0].text == ""
        assert wrapped.stats.fault_counts() == {"empty": 1}

    def test_truncation_shortens_text(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan(truncated=1.0), seed=0)
        full = EchoLLM().complete("p")[0].text
        responses = wrapped.complete("p", n=1)
        assert 0 < len(responses[0].text) < len(full)

    def test_malformed_removes_sql_payload(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan(malformed=1.0), seed=0)
        responses = wrapped.complete("p", n=1)
        assert "#SQL:" not in responses[0].text

    def test_latency_spike_adds_seconds(self):
        wrapped = FaultInjectingLLM(
            EchoLLM(), FaultPlan(latency_spike=1.0, spike_seconds=30.0), seed=0
        )
        responses = wrapped.complete("p", n=2)
        assert all(r.latency_seconds > 29 for r in responses)

    def test_deterministic_given_seed(self):
        plan = FaultPlan.chaos(0.5)

        def run(seed):
            wrapped = FaultInjectingLLM(EchoLLM(), plan, seed=seed)
            events = []
            for index in range(40):
                try:
                    wrapped.complete(f"prompt {index}", n=2)
                except TransportFault as exc:
                    events.append(type(exc).__name__)
            return events, [f.kind for f in wrapped.stats.faults]

        assert run(3) == run(3)
        assert run(3) != run(4)  # different seed, different fault sequence

    def test_rates_approximately_respected(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan.transient(0.2), seed=1)
        failures = 0
        for index in range(500):
            try:
                wrapped.complete(f"p{index}")
            except TransportFault:
                failures += 1
        assert 60 <= failures <= 140  # 100 expected at 20%

    def test_every_injected_fault_recorded(self):
        wrapped = FaultInjectingLLM(EchoLLM(), FaultPlan.chaos(0.4), seed=2)
        raised = 0
        for index in range(200):
            try:
                wrapped.complete(f"p{index}")
            except TransportFault:
                raised += 1
        counts = wrapped.stats.fault_counts()
        transport_recorded = sum(
            counts.get(kind.value, 0) for kind in TRANSPORT_FAULTS
        )
        assert transport_recorded == raised
        assert wrapped.stats.calls == 200

    def test_passes_task_through(self):
        class TaskChecker(EchoLLM):
            def complete(self, prompt, *, temperature=0.0, n=1, task=None):
                assert task == "the-task"
                return super().complete(prompt, temperature=temperature, n=n)

        wrapped = FaultInjectingLLM(TaskChecker(), FaultPlan(), seed=0)
        wrapped.complete("p", task="the-task")
