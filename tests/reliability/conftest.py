"""Shared fixtures for the reliability suite.

One pipeline is built per session over the tiny benchmark; tests swap its
transport with ``rebind_llm`` and the ``rel_pipeline`` fixture rebinds the
clean client afterwards (the simulated LLM is stateless, so rebinding is
side-effect free).
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O


@pytest.fixture(scope="session")
def rel_clean_llm():
    return SimulatedLLM(GPT_4O, seed=0)


@pytest.fixture(scope="session")
def _rel_pipeline(tiny_benchmark, rel_clean_llm):
    return OpenSearchSQL(
        tiny_benchmark, rel_clean_llm, PipelineConfig(n_candidates=3)
    )


@pytest.fixture
def rel_pipeline(_rel_pipeline, rel_clean_llm):
    """The shared pipeline, guaranteed clean-bound before and after."""
    _rel_pipeline.rebind_llm(rel_clean_llm)
    yield _rel_pipeline
    _rel_pipeline.rebind_llm(rel_clean_llm)
