"""CircuitBreaker half-open probing and RetryPolicy retry_after floors
under concurrent callers.

The breaker itself is deliberately lock-free (its owners — the resilient
transport and the admission controller — serialize access), so the
concurrency tests here drive it the way those owners do: every
allow/record pair under one shared lock.
"""

import threading

import pytest

from repro.llm.base import LLMResponse, TokenUsage
from repro.reliability.breaker import BreakerState, CircuitBreaker
from repro.reliability.faults import RateLimitError
from repro.reliability.transport import ResilientLLM, RetryPolicy


class TestHalfOpenProbing:
    def test_cooldown_then_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # exactly cooldown_calls attempts are denied
        assert [breaker.allow() for _ in range(3)] == [False, False, False]
        # the next attempt is the half-open probe
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_success()  # True: the circuit just closed
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=2)
        breaker.record_failure()
        assert [breaker.allow() for _ in range(2)] == [False, False]
        assert breaker.allow()  # probe
        assert breaker.record_failure()  # probe failed: reopened
        assert breaker.state is BreakerState.OPEN
        # the cooldown restarts from zero
        assert [breaker.allow() for _ in range(2)] == [False, False]
        assert breaker.allow()

    def test_concurrent_callers_recover_through_half_open(self):
        """Many workers hammering an open breaker: exactly one probe wins,
        the circuit closes, and everyone sees it closed afterwards."""
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=5)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        lock = threading.Lock()  # the owner's serialization, as in transport
        allowed = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(4):
                with lock:
                    if breaker.allow():
                        breaker.record_success()
                        allowed.append(True)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert breaker.state is BreakerState.CLOSED
        # 5 denials, then one probe closed the circuit; every later call
        # (across all threads) was allowed: 8 threads * 4 calls - 5 denials
        assert len(allowed) == 8 * 4 - 5


class _RateLimitedOnFirstSight:
    """Raises RateLimitError the first time it sees each prompt."""

    model_name = "ratelimited"

    def __init__(self, retry_after: float):
        self.retry_after = retry_after
        self._seen: set = set()
        self._lock = threading.Lock()

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        with self._lock:
            first = prompt not in self._seen
            self._seen.add(prompt)
        if first:
            raise RateLimitError("slow down", retry_after=self.retry_after)
        return [
            LLMResponse(
                text="#SQL: SELECT 1",
                usage=TokenUsage(10, 5),
                model=self.model_name,
            )
            for _ in range(n)
        ]


class TestRetryAfterFloorConcurrent:
    def test_floor_respected_across_concurrent_callers(self):
        """Each caller's backoff must honor the server's retry_after hint
        even when the exponential delay is far smaller, and the shared
        stats must account every caller exactly once."""
        retry_after = 7.0
        inner = _RateLimitedOnFirstSight(retry_after)
        resilient = ResilientLLM(
            inner,
            policy=RetryPolicy(base_delay=0.01, max_delay=0.02, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=1000),
        )
        workers = 8
        barrier = threading.Barrier(workers)
        errors = []

        def caller(index):
            barrier.wait()
            try:
                responses = resilient.complete(f"prompt-{index}")
                assert responses[0].text == "#SQL: SELECT 1"
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=caller, args=(i,)) for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert resilient.stats.retries == workers
        assert resilient.stats.calls == workers
        # every retry waited at least the hinted retry_after, never the
        # tiny exponential delay
        assert resilient.stats.backoff_seconds >= workers * retry_after

    def test_floor_only_lifts_small_delays(self):
        policy = RetryPolicy(base_delay=5.0, jitter=0.0)
        inner = _RateLimitedOnFirstSight(retry_after=2.0)
        resilient = ResilientLLM(inner, policy=policy)
        resilient.complete("p")
        # exponential delay (5s) already above the hint: floor is a no-op
        assert resilient.stats.backoff_seconds == pytest.approx(5.0)
