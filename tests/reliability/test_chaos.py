"""Chaos suite: full evaluations under injected faults.

The fault rate honors ``CHAOS_FAULT_RATE`` (default 0.2) so CI can run the
same tests at a different stress level.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.runner import evaluate_pipeline
from repro.reliability import (
    FaultInjectingLLM,
    FaultPlan,
    ResilientLLM,
    RetryPolicy,
)
from repro.reliability.faults import TRANSPORT_FAULTS

FAULT_RATE = float(os.environ.get("CHAOS_FAULT_RATE", "0.2"))

_TRANSPORT_NAMES = {
    "RateLimitError", "TransientTimeoutError", "ServiceUnavailableError"
}


@pytest.fixture(scope="module")
def workload(tiny_benchmark):
    """≥ 50 examples, per the reliability acceptance bar."""
    examples = tiny_benchmark.dev + tiny_benchmark.test
    assert len(examples) >= 50
    return examples


@pytest.fixture(scope="module")
def clean_report(_rel_pipeline, rel_clean_llm, workload):
    _rel_pipeline.rebind_llm(rel_clean_llm)
    return evaluate_pipeline(_rel_pipeline, workload, name="fault-free")


def transport_injected(injector):
    counts = injector.stats.fault_counts()
    return sum(counts.get(kind.value, 0) for kind in TRANSPORT_FAULTS)


class TestResilientUnderTransientFaults:
    @pytest.fixture(scope="class")
    def run(self, _rel_pipeline, rel_clean_llm, workload):
        injector = FaultInjectingLLM(
            rel_clean_llm, FaultPlan.transient(FAULT_RATE), seed=11
        )
        resilient = ResilientLLM(
            injector, policy=RetryPolicy(max_attempts=6), seed=11
        )
        _rel_pipeline.rebind_llm(resilient)
        try:
            report = evaluate_pipeline(_rel_pipeline, workload, name="transient")
        finally:
            _rel_pipeline.rebind_llm(rel_clean_llm)
        return report, injector, resilient

    def test_run_completes(self, run, workload):
        report, _, _ = run
        assert report.count == len(workload)

    def test_ex_retention_within_two_points(self, run, clean_report):
        report, _, _ = run
        assert clean_report.ex - report.ex < 2.0

    def test_faults_were_actually_injected(self, run):
        _, injector, _ = run
        assert transport_injected(injector) > 0

    def test_every_injected_fault_observed_by_transport(self, run):
        _, injector, resilient = run
        # each transport fault raised by the injector is one recorded
        # failure in the resilient layer — nothing lost, nothing invented
        assert resilient.stats.failures == transport_injected(injector)
        assert resilient.stats.retries + resilient.stats.giveups * (
            resilient.policy.max_attempts - 1
        ) >= resilient.stats.failures - resilient.stats.giveups

    def test_fault_log_carries_kind_and_call_index(self, run):
        _, injector, _ = run
        for record in injector.stats.faults:
            assert record.kind in {k.value for k in TRANSPORT_FAULTS}
            assert record.call_index > 0
            assert record.model == injector.model_name


class TestUnprotectedChaos:
    """Faults hit the pipeline directly: containment, not crashes."""

    @pytest.fixture(scope="class")
    def run(self, _rel_pipeline, rel_clean_llm, workload):
        injector = FaultInjectingLLM(
            rel_clean_llm, FaultPlan.chaos(FAULT_RATE), seed=12
        )
        _rel_pipeline.rebind_llm(injector)
        try:
            report = evaluate_pipeline(_rel_pipeline, workload, name="chaos")
        finally:
            _rel_pipeline.rebind_llm(rel_clean_llm)
        return report, injector

    def test_run_completes_without_raising(self, run, workload):
        report, _ = run
        assert report.count == len(workload)
        assert report.errors == []  # contained, never crashed

    def test_degradations_recorded(self, run):
        report, injector = run
        assert report.degradations
        # each transport-caused containment event maps to one injected fault
        # (empty_generation events are consequences, caused by
        # "no_parseable_sql", not by a transport error directly)
        transport_caused = [
            e for e in report.degradations if e["cause"] in _TRANSPORT_NAMES
        ]
        assert transport_caused
        assert len(transport_caused) <= transport_injected(injector)

    def test_degradation_events_name_their_cause(self, run):
        report, _ = run
        for event in report.degradations:
            assert event["cause"] in _TRANSPORT_NAMES | {"no_parseable_sql"}
            assert event["question_id"]

    def test_still_answers_most_questions(self, run, clean_report):
        report, _ = run
        assert report.ex > clean_report.ex / 2

    def test_content_faults_recorded_too(self, run):
        _, injector = run
        counts = injector.stats.fault_counts()
        assert any(
            counts.get(kind, 0) for kind in ("truncated", "empty", "malformed")
        )


class TestRetrySalvage:
    def test_retry_beats_no_retry_on_degradations(
        self, _rel_pipeline, rel_clean_llm, workload
    ):
        plan = FaultPlan.transient(FAULT_RATE)

        injector = FaultInjectingLLM(rel_clean_llm, plan, seed=21)
        _rel_pipeline.rebind_llm(injector)
        bare = evaluate_pipeline(_rel_pipeline, workload[:30], name="bare")

        injector = FaultInjectingLLM(rel_clean_llm, plan, seed=21)
        _rel_pipeline.rebind_llm(
            ResilientLLM(injector, policy=RetryPolicy(max_attempts=6), seed=21)
        )
        try:
            guarded = evaluate_pipeline(_rel_pipeline, workload[:30], name="guarded")
        finally:
            _rel_pipeline.rebind_llm(rel_clean_llm)

        assert len(guarded.degradations) < len(bare.degradations)
        assert guarded.ex >= bare.ex
