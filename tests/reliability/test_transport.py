"""ResilientLLM tests: retry, backoff, breaker, budget, fallback, stats."""

import pytest

from repro.llm.base import LLMResponse, TokenUsage
from repro.reliability.breaker import BreakerState, CircuitBreaker
from repro.reliability.faults import (
    BudgetExceededError,
    CircuitOpenError,
    RateLimitError,
    TransientTimeoutError,
)
from repro.reliability.stats import ReliabilityStats
from repro.reliability.transport import ResilientLLM, RetryPolicy


def response(text="#SQL: SELECT 1", tokens=(10, 5), model="m"):
    return LLMResponse(text=text, usage=TokenUsage(*tokens), model=model)


class FlakyLLM:
    """Raises the scripted faults, then succeeds forever."""

    model_name = "flaky"

    def __init__(self, faults):
        self.faults = list(faults)
        self.calls = 0

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        self.calls += 1
        if self.faults:
            raise self.faults.pop(0)
        return [response(model=self.model_name) for _ in range(n)]


class TestRetry:
    def test_clean_call_passes_through(self):
        resilient = ResilientLLM(FlakyLLM([]))
        assert resilient.complete("p")[0].text == "#SQL: SELECT 1"
        assert resilient.stats.retries == 0
        assert resilient.stats.calls == 1

    def test_transient_fault_retried(self):
        inner = FlakyLLM([RateLimitError(), TransientTimeoutError()])
        resilient = ResilientLLM(inner)
        assert resilient.complete("p")
        assert inner.calls == 3
        assert resilient.stats.retries == 2
        assert resilient.stats.giveups == 0

    def test_gives_up_after_max_attempts(self):
        inner = FlakyLLM([RateLimitError()] * 10)
        resilient = ResilientLLM(inner, policy=RetryPolicy(max_attempts=3))
        with pytest.raises(RateLimitError):
            resilient.complete("p")
        assert inner.calls == 3
        assert resilient.stats.giveups == 1
        assert resilient.stats.retries == 2

    def test_non_retryable_fault_raises_immediately(self):
        inner = FlakyLLM([ValueError("not transport")])
        resilient = ResilientLLM(inner)
        with pytest.raises(ValueError):
            resilient.complete("p")
        assert inner.calls == 1

    def test_backoff_is_exponential_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=4.0, multiplier=2.0, jitter=0.0)
        import random

        rng = random.Random(0)
        delays = [policy.delay(k, rng) for k in range(4)]
        assert delays == [1.0, 2.0, 4.0, 4.0]

    def test_backoff_recorded_not_slept(self):
        inner = FlakyLLM([TransientTimeoutError()] * 2)
        resilient = ResilientLLM(inner, policy=RetryPolicy(base_delay=0.5, jitter=0.0))
        resilient.complete("p")
        assert resilient.stats.backoff_seconds == pytest.approx(0.5 + 1.0)

    def test_sleep_hook_called(self):
        slept = []
        inner = FlakyLLM([TransientTimeoutError()])
        resilient = ResilientLLM(
            inner, policy=RetryPolicy(base_delay=0.25, jitter=0.0), sleep=slept.append
        )
        resilient.complete("p")
        assert slept == [0.25]

    def test_rate_limit_retry_after_floor(self):
        inner = FlakyLLM([RateLimitError(retry_after=5.0)])
        resilient = ResilientLLM(inner, policy=RetryPolicy(base_delay=0.1, jitter=0.0))
        resilient.complete("p")
        assert resilient.stats.backoff_seconds == pytest.approx(5.0)

    def test_deterministic_jitter(self):
        def total_backoff(seed):
            inner = FlakyLLM([TransientTimeoutError()] * 3)
            resilient = ResilientLLM(inner, seed=seed)
            resilient.complete("p")
            return resilient.stats.backoff_seconds

        assert total_backoff(5) == total_backoff(5)


class TestBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_calls=2)
        assert breaker.state is BreakerState.CLOSED
        assert not breaker.record_failure()  # first failure: still closed
        assert breaker.record_failure()  # threshold reached: opened
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # half-open probe after cooldown
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_calls=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.record_failure()  # probe failed: re-opened
        assert breaker.state is BreakerState.OPEN

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_calls=0)

    def test_open_breaker_without_fallback_raises(self):
        inner = FlakyLLM([TransientTimeoutError()] * 50)
        resilient = ResilientLLM(
            inner,
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_calls=5),
        )
        for _ in range(2):
            with pytest.raises(TransientTimeoutError):
                resilient.complete("p")
        with pytest.raises(CircuitOpenError):
            resilient.complete("p")
        assert resilient.stats.breaker_opens == 1

    def test_open_breaker_routes_to_fallback(self):
        inner = FlakyLLM([TransientTimeoutError()] * 4)
        fallback = FlakyLLM([])
        fallback.model_name = "cheap"
        resilient = ResilientLLM(
            inner,
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_calls=3),
            fallback=fallback,
        )
        for _ in range(2):
            with pytest.raises(TransientTimeoutError):
                resilient.complete("p")
        served = resilient.complete("p")
        assert served[0].model == "cheap"
        assert resilient.stats.fallback_calls == 1

    def test_breaker_recovers_through_probe(self):
        inner = FlakyLLM([TransientTimeoutError()] * 2)
        resilient = ResilientLLM(
            inner,
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_calls=1),
            fallback=FlakyLLM([]),
        )
        for _ in range(2):
            with pytest.raises(TransientTimeoutError):
                resilient.complete("p")
        resilient.complete("p")  # cooldown: fallback serves
        assert resilient.complete("p")  # half-open probe hits healed primary
        assert resilient.breaker.state is BreakerState.CLOSED
        assert resilient.stats.breaker_closes == 1


class TestBudget:
    def test_call_budget(self):
        resilient = ResilientLLM(FlakyLLM([]), max_calls=2)
        resilient.complete("a")
        resilient.complete("b")
        with pytest.raises(BudgetExceededError):
            resilient.complete("c")

    def test_token_budget(self):
        resilient = ResilientLLM(FlakyLLM([]), max_tokens=20)
        resilient.complete("a")  # 15 tokens spent
        resilient.complete("b")  # crosses 20
        with pytest.raises(BudgetExceededError) as info:
            resilient.complete("c")
        assert info.value.spent_tokens >= 20

    def test_budget_error_not_retryable(self):
        assert not BudgetExceededError("x").retryable


class TestStats:
    def test_merge(self):
        a = ReliabilityStats(calls=2, retries=1, backoff_seconds=0.5)
        a.record_fault("timeout", 1)
        b = ReliabilityStats(calls=3, giveups=1)
        b.record_fault("rate_limit", 2)
        a.merge(b)
        assert a.calls == 5
        assert a.fault_counts() == {"timeout": 1, "rate_limit": 1}

    def test_summary_shape(self):
        stats = ReliabilityStats()
        stats.record_fault("timeout", 1, model="m", detail="boom")
        summary = stats.summary()
        assert summary["failures"] == 1
        assert summary["fault_counts"] == {"timeout": 1}
        assert set(summary) >= {
            "calls", "retries", "giveups", "breaker_opens", "fallback_calls",
            "backoff_seconds", "tokens_spent",
        }

    def test_tokens_accounted(self):
        resilient = ResilientLLM(FlakyLLM([]))
        resilient.complete("p", n=2)
        assert resilient.stats.tokens_spent == 30
