"""Graceful pipeline degradation: every stage failure is contained and
recorded as a typed DegradationEvent instead of crashing ``answer``."""

from __future__ import annotations


from repro.core.pipeline import FALLBACK_SQL
from repro.llm.tasks import (
    ColumnSelectionTask,
    EntityExtractionTask,
    GenerationTask,
    SelectAlignmentTask,
)
from repro.reliability.degradation import DegradationEvent, DegradationKind
from repro.reliability.faults import TransientTimeoutError


class FailOnTask:
    """Transport that raises for chosen task types, else delegates."""

    def __init__(self, inner, task_types, fail_first=None):
        self.inner = inner
        self.task_types = task_types
        self.model_name = inner.model_name
        #: when set, only the first N matching calls fail
        self.fail_first = fail_first
        self._failed = 0

    def complete(self, prompt, *, temperature=0.0, n=1, task=None):
        if isinstance(task, self.task_types):
            if self.fail_first is None or self._failed < self.fail_first:
                self._failed += 1
                raise TransientTimeoutError("injected stage failure")
        return self.inner.complete(prompt, temperature=temperature, n=n, task=task)


def kinds(result):
    return [event.kind for event in result.degradations]


class TestEvent:
    def test_round_trip(self):
        event = DegradationEvent(
            kind=DegradationKind.EXTRACTION_FALLBACK,
            stage="extraction",
            cause="TransientTimeoutError",
            detail="boom",
        )
        assert DegradationEvent.from_dict(event.to_dict()) == event

    def test_dict_form_is_json_friendly(self):
        event = DegradationEvent(
            kind=DegradationKind.REFINEMENT_SKIPPED, stage="refinement"
        )
        payload = event.to_dict()
        assert payload["kind"] == "refinement_skipped"
        assert isinstance(payload["stage"], str)


class TestCleanRun:
    def test_no_degradations(self, rel_pipeline, tiny_benchmark):
        result = rel_pipeline.answer(tiny_benchmark.dev[0])
        assert result.degradations == []
        assert not result.degraded


class TestExtractionContainment:
    def test_extraction_failure_falls_back_to_full_schema(
        self, rel_pipeline, rel_clean_llm, tiny_benchmark
    ):
        example = tiny_benchmark.dev[0]
        rel_pipeline.rebind_llm(
            FailOnTask(
                rel_clean_llm,
                (EntityExtractionTask, ColumnSelectionTask, SelectAlignmentTask),
            )
        )
        result = rel_pipeline.answer(example)
        assert DegradationKind.EXTRACTION_FALLBACK in kinds(result)
        # the fallback prompts with the full preprocessed schema
        pre = rel_pipeline.preprocessed(example.db_id)
        assert result.extraction.schema == pre.schema
        assert result.final_sql  # pipeline still produced an answer

    def test_event_carries_cause(self, rel_pipeline, rel_clean_llm, tiny_benchmark):
        rel_pipeline.rebind_llm(FailOnTask(rel_clean_llm, (EntityExtractionTask,)))
        result = rel_pipeline.answer(tiny_benchmark.dev[0])
        event = next(
            e for e in result.degradations
            if e.kind is DegradationKind.EXTRACTION_FALLBACK
        )
        assert event.stage == "extraction"
        assert event.cause == "TransientTimeoutError"


class TestGenerationContainment:
    def test_first_failure_reduces_to_single_candidate(
        self, rel_pipeline, rel_clean_llm, tiny_benchmark
    ):
        rel_pipeline.rebind_llm(
            FailOnTask(rel_clean_llm, (GenerationTask,), fail_first=1)
        )
        result = rel_pipeline.answer(tiny_benchmark.dev[0])
        assert kinds(result) == [DegradationKind.GENERATION_REDUCED]
        assert result.final_sql and result.final_sql != FALLBACK_SQL

    def test_total_failure_yields_recorded_fallback_sql(
        self, rel_pipeline, rel_clean_llm, tiny_benchmark
    ):
        rel_pipeline.rebind_llm(FailOnTask(rel_clean_llm, (GenerationTask,)))
        result = rel_pipeline.answer(tiny_benchmark.dev[0])
        observed = kinds(result)
        assert DegradationKind.GENERATION_REDUCED in observed
        assert DegradationKind.ANSWER_FAILED in observed
        # the old silent "SELECT 1" is now an explicit, recorded event
        assert DegradationKind.EMPTY_GENERATION in observed
        assert result.generation_sql == FALLBACK_SQL


class TestRefinementContainment:
    def test_refinement_failure_returns_unrefined_candidate(
        self, rel_pipeline, tiny_benchmark, monkeypatch
    ):
        def explode(*args, **kwargs):
            raise TransientTimeoutError("refiner down")

        monkeypatch.setattr(rel_pipeline.refiner, "run", explode)
        result = rel_pipeline.answer(tiny_benchmark.dev[0])
        assert kinds(result) == [DegradationKind.REFINEMENT_SKIPPED]
        assert result.final_sql == result.generation_sql
        assert result.refined_sql == result.generation_sql

    def test_every_stage_down_still_answers(
        self, rel_pipeline, rel_clean_llm, tiny_benchmark, monkeypatch
    ):
        class Dead:
            model_name = rel_clean_llm.model_name

            def complete(self, prompt, *, temperature=0.0, n=1, task=None):
                raise TransientTimeoutError("total outage")

        rel_pipeline.rebind_llm(Dead())
        monkeypatch.setattr(
            rel_pipeline.refiner,
            "run",
            lambda *a, **k: (_ for _ in ()).throw(TransientTimeoutError("down")),
        )
        result = rel_pipeline.answer(tiny_benchmark.dev[0])
        assert result.final_sql == FALLBACK_SQL
        assert result.degraded
        observed = kinds(result)
        for expected in (
            DegradationKind.EXTRACTION_FALLBACK,
            DegradationKind.GENERATION_REDUCED,
            DegradationKind.ANSWER_FAILED,
            DegradationKind.EMPTY_GENERATION,
            DegradationKind.REFINEMENT_SKIPPED,
        ):
            assert expected in observed


class TestRebind:
    def test_rebind_reaches_all_stages(self, rel_pipeline, rel_clean_llm):
        marker = FailOnTask(rel_clean_llm, ())
        rel_pipeline.rebind_llm(marker)
        assert rel_pipeline.llm is marker
        assert rel_pipeline.extractor.llm is marker
        assert rel_pipeline.generator.llm is marker
        assert rel_pipeline.refiner.llm is marker

    def test_rebind_preserves_preprocessing(self, rel_pipeline, rel_clean_llm):
        before = rel_pipeline.databases
        library = rel_pipeline.library
        rel_pipeline.rebind_llm(FailOnTask(rel_clean_llm, ()))
        assert rel_pipeline.databases is before
        assert rel_pipeline.library is library
