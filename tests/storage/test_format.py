"""Journal v2 grammar: CRC framing, rec continuity, tail-vs-interior."""

import json

from repro.storage import (
    JournalCorruptionError,
    decode_line,
    encode_record,
    scan_file,
)


def write_journal(path, records, start_rec=0):
    lines = [
        encode_record(record, start_rec + i) for i, record in enumerate(records)
    ]
    path.write_text("\n".join(lines) + "\n")
    return lines


RECORDS = [
    {"type": "header", "version": 2, "config": {"requests": 3}},
    {"type": "accepted", "seq": 0, "question_id": "q1", "db_id": "db"},
    {"type": "committed", "seq": 0, "status": "ok"},
    {"type": "accepted", "seq": 1, "question_id": "q2", "db_id": "db"},
]


class TestFraming:
    def test_roundtrip(self):
        line = encode_record({"type": "accepted", "seq": 7}, rec=3)
        record, reason = decode_line(line)
        assert reason is None
        assert record["seq"] == 7
        assert record["rec"] == 3
        assert "crc" not in record

    def test_any_flipped_bit_is_caught(self):
        line = encode_record({"type": "committed", "seq": 1, "status": "ok"}, 0)
        for i in range(len(line)):
            flipped = line[:i] + chr(ord(line[i]) ^ 1) + line[i + 1:]
            record, reason = decode_line(flipped)
            # every corruption is either unparseable or a crc mismatch —
            # never a silently-accepted different record
            assert record is None or record == decode_line(line)[0], i

    def test_v1_line_passes_unverified(self):
        record, reason = decode_line(json.dumps({"type": "accepted", "seq": 2}))
        assert reason is None
        assert record == {"type": "accepted", "seq": 2}

    def test_crc_covers_rec(self):
        # the same body framed at a different position must not verify
        line = encode_record({"type": "accepted", "seq": 0}, rec=1)
        moved = json.loads(line)
        moved["rec"] = 2
        _, reason = decode_line(json.dumps(moved, sort_keys=True))
        assert reason == "crc-mismatch"


class TestScan:
    def test_clean_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        scan = scan_file(path)
        assert scan.records == 4
        assert scan.v2_records == 4
        assert scan.header_version == 2
        assert scan.accepted == {0, 1}
        assert scan.committed == {0}
        assert scan.pending == {1}
        assert not scan.issues
        assert scan.good_bytes == path.stat().st_size
        assert scan.next_rec == 4

    def test_torn_tail_is_classified_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        data = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_text(data)
        scan = scan_file(path)
        assert scan.torn_tail
        assert not scan.interior_issues
        # truncating at good_bytes drops exactly the torn line
        assert data[: scan.good_bytes] == "\n".join(lines[:-1]) + "\n"

    def test_interior_damage_is_not_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        lines[1] = lines[1][:10] + "XX" + lines[1][12:]
        path.write_text("\n".join(lines) + "\n")
        scan = scan_file(path)
        assert not scan.torn_tail
        assert len(scan.interior_issues) == 1
        assert scan.interior_issues[0].line == 2

    def test_two_damaged_trailing_lines_are_interior(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        lines[-2] = lines[-2][: len(lines[-2]) // 2]
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        scan = scan_file(path)
        # one tear is a crash; two damaged lines cannot be
        assert not scan.torn_tail
        assert len(scan.interior_issues) == 2

    def test_vanished_line_is_a_rec_gap(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        del lines[2]  # a whole committed line vanished, neighbours intact
        path.write_text("\n".join(lines) + "\n")
        scan = scan_file(path)
        assert [i.reason for i in scan.issues] == ["rec-gap"]
        assert not scan.torn_tail
        assert 0 not in scan.committed

    def test_rec_resyncs_after_damage(self, tmp_path):
        # a damaged line explains any rec discontinuity after it: only
        # ONE issue is reported, not a cascading rec-gap per line
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        scan = scan_file(path)
        assert len(scan.issues) == 1
        assert scan.issues[0].reason == "unparseable"
        assert scan.records == 3

    def test_seal_and_epoch(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(
            path, RECORDS + [{"type": "seal", "epoch": 2, "committed": 1}]
        )
        scan = scan_file(path)
        assert scan.sealed
        assert scan.seals == 1
        assert scan.epoch == 2

    def test_records_after_seal_unseal_the_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(
            path,
            RECORDS[:3]
            + [{"type": "seal", "epoch": 1, "committed": 1}]
            + [RECORDS[3]],
        )
        scan = scan_file(path)
        assert not scan.sealed  # last record is not a seal
        assert scan.epoch == 1

    def test_mixed_v1_v2_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        v2 = [encode_record(RECORDS[0], 0), encode_record(RECORDS[1], 1)]
        v1 = [json.dumps({"type": "committed", "seq": 0, "status": "ok"})]
        path.write_text("\n".join(v2 + v1 + [encode_record(RECORDS[3], 3)]) + "\n")
        scan = scan_file(path)
        assert scan.v1_records == 1
        assert scan.v2_records == 3
        assert not scan.issues  # the v1 record consumed rec slot 2

    def test_loss_scope_is_json_ready(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        scope = scan_file(path).loss_scope()
        json.dumps(scope)  # must serialize
        assert scope["interior_damage"] == 1
        assert scope["committed"] == 1


class TestCorruptionError:
    def test_message_is_one_line_and_actionable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = write_journal(path, RECORDS)
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        error = JournalCorruptionError(path, scan_file(path))
        message = str(error)
        assert "\n" not in message
        assert "fsck" in message
        assert "1 damaged line(s)" in message
        assert error.scan.records == 3
