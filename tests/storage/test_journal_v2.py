"""ServingJournal on the v2 grammar: seals, strictness, brownout, compat.

The torn-tolerance and recovery semantics of the v1 journal live in
``tests/serving/test_journal.py`` and must keep passing unchanged; this
file covers what v2 *adds*: CRC-strict interior-damage detection keyed
on the header version, epoch-stamped seals on clean shutdown, the
ENOSPC/EIO brownout path, and byte-identical recovery of a v1 journal
through the v2 reader.
"""

import json
from types import SimpleNamespace

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O
from repro.serving import (
    JournalCorruptionError,
    JournalVersionError,
    ServingEngine,
    ServingJournal,
    assemble_report,
    recover_run,
)
from repro.storage import FaultyStorage, StorageFaultPlan, scan_file


def example(question_id="q1", db_id="db_a"):
    return SimpleNamespace(question_id=question_id, db_id=db_id)


def seeded_journal(path):
    journal = ServingJournal(path)
    journal.write_header({"requests": 2})
    journal.accept(example("q1"))
    journal.commit(0, "failed", error="x")
    journal.accept(example("q2"))
    journal.commit(1, "failed", error="y")
    return journal


class TestSealAndEpoch:
    def test_seal_marks_clean_shutdown(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = seeded_journal(path)
        assert not journal.sealed
        journal.seal()
        assert journal.sealed
        scan = scan_file(path)
        assert scan.sealed
        assert scan.epoch == 1

    def test_seal_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = seeded_journal(path)
        journal.seal()
        journal.close()  # close() is an alias; no second seal record
        assert scan_file(path).seals == 1

    def test_epoch_increments_per_life(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = seeded_journal(path)
        first.seal()
        second = ServingJournal(path)
        assert second.epoch == 2
        second.seal()
        scan = scan_file(path)
        assert scan.epoch == 2
        assert scan.seals == 2

    def test_new_records_unseal_a_reopened_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        seeded_journal(path).seal()
        reopened = ServingJournal(path)
        assert reopened.sealed  # the file does end with a seal
        reopened.accept(example("q3"))
        assert not reopened.sealed  # history re-opened past the seal
        assert not scan_file(path).sealed


class TestStrictness:
    def test_v2_interior_damage_raises_typed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        seeded_journal(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:15] + "##" + lines[1][17:]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError) as info:
            ServingJournal(path)
        assert info.value.scan.records == 4
        assert "fsck" in str(info.value)

    def test_v2_torn_tail_is_truncated_on_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        seeded_journal(path)
        lines = path.read_text().splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][:20]
        path.write_text(torn)
        journal = ServingJournal(path)
        assert journal.pending() == [1]  # the torn commit is pending again
        # the tear is physically gone: appends can never merge into it
        assert path.read_text().endswith("\n")
        journal.accept(example("q3"))
        assert scan_file(path).issues == []

    def test_headerless_file_keeps_tolerant_semantics(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = ServingJournal(path)
        journal.accept(example("q1"))
        journal.commit(0, "failed", error="x")
        journal.accept(example("q2"))
        lines = path.read_text().splitlines()
        lines[1] = "garbage"  # interior damage, but no v2 header contract
        path.write_text("\n".join(lines) + "\n")
        reloaded = ServingJournal(path)  # must NOT raise
        assert reloaded.pending() == [0, 1]

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        from repro.storage import encode_record

        path.write_text(
            encode_record(
                {"type": "header", "version": 99, "config": {}}, 0
            ) + "\n"
        )
        with pytest.raises(JournalVersionError) as info:
            ServingJournal(path)
        assert info.value.found == 99


class TestBrownout:
    def test_enospc_disables_but_run_continues(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(enospc_after=2))
        path = tmp_path / "j.jsonl"
        fired = []
        journal = ServingJournal(
            path, opener=storage.opener, on_storage_error=fired.append
        )
        journal.write_header({"requests": 3})  # append 0
        journal.accept(example("q1"))  # append 1
        journal.commit(0, "failed", error="x")  # append 2 -> ENOSPC
        assert journal.disabled
        assert journal.disable_reason.startswith("enospc")
        assert len(fired) == 1
        # in-memory bookkeeping continues un-journaled
        assert journal.accept(example("q2")) == 1
        journal.commit(1, "failed", error="y")
        assert journal.committed(1)["error"] == "y"
        assert journal.pending() == []  # the live view stays consistent
        # ...but the disk never saw seq 0's commit (or seq 1 at all): a
        # post-brownout recovery re-runs exactly what was lost
        assert ServingJournal(path).pending() == [0]
        stats = journal.stats_dict()
        assert stats["disabled"]
        assert stats["write_errors"] == {"enospc": 1}

    def test_disabled_journal_skips_seal(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(enospc_after=2))
        path = tmp_path / "j.jsonl"
        journal = ServingJournal(path, opener=storage.opener)
        journal.write_header({"requests": 1})
        journal.accept(example("q1"))
        journal.commit(0, "failed", error="x")  # trips ENOSPC
        journal.seal()
        assert not journal.sealed  # a browned-out run is not clean
        assert not scan_file(path).sealed

    def test_listener_fires_exactly_once(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(enospc_after=1))
        journal = ServingJournal(tmp_path / "j.jsonl", opener=storage.opener)
        fired = []
        journal.add_storage_listener(fired.append)
        journal.write_header({"a": 1})  # append 0, survives
        journal.accept(example("q1"))  # append 1 -> ENOSPC, fires
        journal.accept(example("q2"))  # already disabled: no second fire
        assert len(fired) == 1

    def test_on_disk_file_stays_well_formed(self, tmp_path):
        # ENOSPC raises before any byte lands, so the surviving prefix
        # must still parse clean — brownout never leaves a torn line.
        storage = FaultyStorage(StorageFaultPlan(enospc_after=3))
        path = tmp_path / "j.jsonl"
        journal = ServingJournal(path, opener=storage.opener)
        journal.write_header({"requests": 2})
        journal.accept(example("q1"))
        journal.commit(0, "failed", error="x")
        journal.accept(example("q2"))
        assert journal.disabled
        assert scan_file(path).issues == []


def fresh_pipeline(tiny_benchmark):
    llm = SimulatedLLM(GPT_4O, seed=0)
    return OpenSearchSQL(tiny_benchmark, llm, PipelineConfig(n_candidates=3))


def downgrade_to_v1(src, dst):
    """Rewrite a v2 journal as its v1 equivalent (no crc/rec, no seals)."""
    lines = []
    for line in src.read_text().splitlines():
        record = json.loads(line)
        record.pop("crc", None)
        record.pop("rec", None)
        if record.get("type") == "seal":
            continue
        if record.get("type") == "header":
            record["version"] = 1
        lines.append(json.dumps(record))
    dst.write_text("\n".join(lines) + "\n")


class TestV1Compat:
    def test_v1_journal_recovers_byte_identical(
        self, tiny_benchmark, tmp_path
    ):
        dev = tiny_benchmark.dev
        workload = [dev[0], dev[1], dev[0], dev[2]]
        v2_path = tmp_path / "v2.jsonl"
        journal = ServingJournal(v2_path)
        journal.write_header({"requests": len(workload)})
        pipeline = fresh_pipeline(tiny_benchmark)
        with ServingEngine(pipeline, workers=1, journal=journal) as engine:
            engine.run(workload)

        v1_path = tmp_path / "v1.jsonl"
        downgrade_to_v1(v2_path, v1_path)
        scan = scan_file(v1_path)
        assert scan.v2_records == 0 and scan.v1_records > 0

        scorer = fresh_pipeline(tiny_benchmark)
        reports = []
        for path in (v2_path, v1_path):
            outcomes = recover_run(
                ServingJournal(path), fresh_pipeline(tiny_benchmark), workload
            )
            report = assemble_report(outcomes, workload, scorer)
            reports.append(
                json.dumps(report.deterministic_dict(), sort_keys=True)
            )
        assert reports[0] == reports[1]

    def test_v1_journal_with_interior_damage_still_loads(
        self, tiny_benchmark, tmp_path
    ):
        # the compat contract: v1 files keep the old tolerant skip
        dev = tiny_benchmark.dev
        v2_path = tmp_path / "v2.jsonl"
        journal = ServingJournal(v2_path)
        journal.write_header({"requests": 2})
        with ServingEngine(
            fresh_pipeline(tiny_benchmark), workers=1, journal=journal
        ) as engine:
            engine.run([dev[0], dev[1]])
        v1_path = tmp_path / "v1.jsonl"
        downgrade_to_v1(v2_path, v1_path)
        lines = v1_path.read_text().splitlines()
        # tear the first COMMIT record (accept/commit interleaving varies
        # with engine scheduling, so find it by content, not position)
        target = next(
            i for i, line in enumerate(lines) if '"committed"' in line
        )
        assert target < len(lines) - 1  # interior, not the tail
        lines[target] = lines[target][: len(lines[target]) // 2]
        v1_path.write_text("\n".join(lines) + "\n")
        reloaded = ServingJournal(v1_path)  # must not raise
        assert reloaded.pending()
