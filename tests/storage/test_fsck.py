"""fsck: scan, double-serve detection, truncate/quarantine repair."""

import json

import pytest

from repro.storage import (
    encode_record,
    find_double_serves,
    repair_file,
    scan_file,
    scan_path,
)


def write_journal(path, records):
    path.write_text(
        "\n".join(encode_record(r, i) for i, r in enumerate(records)) + "\n"
    )


RECORDS = [
    {"type": "header", "version": 2, "config": {}},
    {"type": "accepted", "seq": 0, "question_id": "q1", "db_id": "db"},
    {"type": "committed", "seq": 0, "status": "ok"},
    {"type": "accepted", "seq": 1, "question_id": "q2", "db_id": "db"},
    {"type": "committed", "seq": 1, "status": "ok"},
]


class TestScanPath:
    def test_single_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        scans = scan_path(path)
        assert list(scans) == ["j.jsonl"]
        assert scans["j.jsonl"].committed == {0, 1}

    def test_directory_uses_segment_discovery(self, tmp_path):
        for shard in range(2):
            write_journal(tmp_path / f"journal-shard-{shard}.jsonl", RECORDS[:3])
        (tmp_path / "notes.txt").write_text("not a segment")
        scans = scan_path(tmp_path)
        assert sorted(scans) == [
            "journal-shard-0.jsonl", "journal-shard-1.jsonl",
        ]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scan_path(tmp_path / "absent.jsonl")
        with pytest.raises(FileNotFoundError):
            scan_path(tmp_path)  # dir with no segments


class TestDoubleServes:
    def test_cross_segment_duplicate_commit_found(self, tmp_path):
        write_journal(tmp_path / "journal-shard-0.jsonl", RECORDS)
        write_journal(
            tmp_path / "journal-shard-1.jsonl",
            [RECORDS[0], {"type": "accepted", "seq": 1, "question_id": "q2",
                          "db_id": "db"},
             {"type": "committed", "seq": 1, "status": "ok"}],
        )
        doubles = find_double_serves(scan_path(tmp_path))
        assert list(doubles) == [1]
        assert sorted(doubles[1]) == [
            "journal-shard-0.jsonl", "journal-shard-1.jsonl",
        ]

    def test_disjoint_segments_are_clean(self, tmp_path):
        write_journal(tmp_path / "journal-shard-0.jsonl", RECORDS[:3])
        write_journal(
            tmp_path / "journal-shard-1.jsonl",
            [RECORDS[0], RECORDS[3],
             {"type": "committed", "seq": 1, "status": "ok"}],
        )
        assert find_double_serves(scan_path(tmp_path)) == {}


class TestRepair:
    def test_clean_file_untouched(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        before = path.read_bytes()
        result = repair_file(path)
        assert path.read_bytes() == before
        assert not result.rewritten
        assert result.quarantined == 0

    def test_torn_tail_truncated_in_place(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        data = path.read_text().splitlines()
        path.write_text("\n".join(data[:-1]) + "\n" + data[-1][:20])
        result = repair_file(path)
        assert result.tail_truncated
        assert not result.rewritten  # pure tear: no rewrite needed
        scan = scan_file(path)
        assert not scan.issues
        assert scan.committed == {0}  # seq 1's commit was the torn line

    def test_interior_damage_quarantined_and_rewritten(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:12] + "XX" + lines[2][14:]  # corrupt commit 0
        path.write_text("\n".join(lines) + "\n")
        result = repair_file(path)
        assert result.rewritten
        assert result.quarantined == 1
        assert result.records_kept == 4
        # the damaged raw line is preserved as evidence
        sidecar = json.loads(
            (tmp_path / "j.jsonl.quarantine").read_text().splitlines()[0]
        )
        assert sidecar["reason"] in ("crc-mismatch", "unparseable")
        # the repaired file is strictly clean and re-framed contiguously
        scan = scan_file(path)
        assert not scan.issues
        assert scan.committed == {1}  # commit 0 is gone, scoped loss
        assert scan.accepted == {0, 1}

    def test_repaired_file_drops_seals(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(
            path, RECORDS + [{"type": "seal", "epoch": 1, "committed": 2}]
        )
        lines = path.read_text().splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        result = repair_file(path)
        assert result.seals_dropped == 1
        scan = scan_file(path)
        assert not scan.sealed  # a repaired journal is not a clean one
