"""Crash fuzzer unit smoke: a tiny campaign certifies and is stable.

The full enumeration runs in ``benchmarks/bench_crashfuzz.py``; this
keeps a bounded version in the tier-1 suite so a recovery regression
fails fast, without the bench harness.
"""

import pytest

from repro.storage.crashfuzz import CrashFuzzConfig, run_crash_fuzz


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    config = CrashFuzzConfig(
        shards=2, requests=6, distinct=4, limit=4, bitflips=1, routing=False
    )
    return run_crash_fuzz(config, tmp_path_factory.mktemp("crashfuzz"))


class TestCampaign:
    def test_certifies(self, campaign):
        assert campaign.ok, [
            o.to_dict() for o in campaign.outcomes if not o.ok
        ]

    def test_forbidden_outcomes_absent(self, campaign):
        classes = {o.outcome for o in campaign.outcomes}
        assert "wrong-report" not in classes
        assert "double-serve" not in classes
        assert "traceback" not in classes

    def test_covers_all_cut_kinds(self, campaign):
        assert {o.kind for o in campaign.outcomes} == {"clean", "torn", "flip"}

    def test_limit_bounds_enumeration(self, campaign):
        assert sum(1 for o in campaign.outcomes if o.kind == "clean") == 4
        assert sum(1 for o in campaign.outcomes if o.kind == "torn") == 4

    def test_summary_and_format(self, campaign):
        summary = campaign.summary()
        assert summary["ok"]
        assert summary["cuts"] == len(campaign.outcomes)
        assert "CERTIFIED" in campaign.format()

    def test_details_are_path_free(self, campaign):
        # outcome details feed a determinism diff across machines: no
        # temp directories may leak into them
        for outcome in campaign.outcomes:
            assert "/tmp" not in outcome.detail, outcome.to_dict()
            assert "crashfuzz0" not in outcome.detail, outcome.to_dict()


def test_no_torn_config_skips_torn_cuts(tmp_path):
    config = CrashFuzzConfig(
        shards=2, requests=4, distinct=2, limit=2, bitflips=0,
        torn=False, routing=False,
    )
    result = run_crash_fuzz(config, tmp_path)
    assert {o.kind for o in result.outcomes} == {"clean"}
