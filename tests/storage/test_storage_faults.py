"""FaultyStorage: seeded draws, durability model, power cuts."""

import errno

import pytest

from repro.storage import FaultyStorage, StorageFaultPlan
from repro.storage.faults import stable_hash


class TestPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            StorageFaultPlan(torn_write=1.5)
        with pytest.raises(ValueError):
            StorageFaultPlan(torn_write=0.6, bit_flip=0.6)
        with pytest.raises(ValueError):
            StorageFaultPlan(enospc_after=-1)

    def test_round_trip_ignores_unknown_keys(self):
        plan = StorageFaultPlan.chaos(0.2)
        payload = plan.to_dict()
        payload["seed"] = 42  # the cluster config rides a seed along
        assert StorageFaultPlan.from_dict(payload) == plan

    def test_none_plan_injects_nothing(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan.none())
        path = tmp_path / "f.txt"
        with storage.opener(path, "a") as handle:
            for i in range(50):
                handle.write(f"line {i}\n")
        assert storage.stats_dict()["writes"] == 50
        assert storage.events == []
        assert path.read_text().splitlines()[49] == "line 49"


class TestStableHash:
    def test_deterministic_and_spread(self):
        draws = [stable_hash(0, "p", i) for i in range(100)]
        assert draws == [stable_hash(0, "p", i) for i in range(100)]
        assert len(set(draws)) == 100

    def test_keyed_on_every_part(self):
        assert stable_hash(0, "p", 1) != stable_hash(1, "p", 1)
        assert stable_hash(0, "p", 1) != stable_hash(0, "q", 1)


class TestEnospcAfter:
    def test_first_n_succeed_then_enospc(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(enospc_after=3))
        path = tmp_path / "f.txt"
        handle = storage.opener(path, "a")
        for i in range(3):
            handle.write(f"ok {i}\n")
        with pytest.raises(OSError) as info:
            handle.write("doomed\n")
        assert info.value.errno == errno.ENOSPC
        handle.flush()  # the surviving writes were buffered, not lost
        assert path.read_text() == "ok 0\nok 1\nok 2\n"
        assert storage.stats_dict()["enospc"] == 1


class TestPowerCut:
    def test_clean_writes_survive_sequential_writeback(self, tmp_path):
        # the model is sequential writeback: clean (untorn) writes extend
        # the surviving prefix even before a sync, so a fault-free run
        # loses nothing at the plug-pull — only a tear ends the prefix
        storage = FaultyStorage(StorageFaultPlan.none())
        path = tmp_path / "f.txt"
        handle = storage.opener(path, "a")
        handle.write("durable\n")
        handle.sync()
        handle.write("unsynced\n")
        handle.flush()
        assert storage.power_cut() == {}
        assert path.read_text() == "durable\nunsynced\n"

    def test_torn_write_survives_only_to_the_tear(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(torn_write=1.0), seed=5)
        path = tmp_path / "f.txt"
        handle = storage.opener(path, "a")
        payload = "x" * 40 + "\n"
        handle.write(payload)
        handle.flush()
        assert path.stat().st_size == len(payload)  # live process sees all
        lost = storage.power_cut()
        size = path.stat().st_size
        assert 1 <= size < len(payload)  # reboot sees the tear
        assert lost[str(path)] == len(payload) - size

    def test_writes_after_a_tear_do_not_extend_the_prefix(self, tmp_path):
        plans = StorageFaultPlan(torn_write=1.0)
        storage = FaultyStorage(plans, seed=5)
        path = tmp_path / "f.txt"
        handle = storage.opener(path, "a")
        handle.write("a" * 20 + "\n")
        handle.write("b" * 20 + "\n")
        storage.power_cut()
        content = path.read_bytes()
        assert b"b" not in content  # the second write sits past the tear

    def test_sync_restores_full_durability(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(torn_write=1.0), seed=5)
        path = tmp_path / "f.txt"
        handle = storage.opener(path, "a")
        handle.write("a" * 20 + "\n")
        handle.sync()  # fsync after the torn write: everything durable
        storage.power_cut()
        assert path.stat().st_size == 21


class TestFaultKinds:
    def test_short_write_persists_prefix_and_raises_eio(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(short_write=1.0), seed=1)
        path = tmp_path / "f.txt"
        handle = storage.opener(path, "a")
        with pytest.raises(OSError) as info:
            handle.write("y" * 30 + "\n")
        assert info.value.errno == errno.EIO
        assert 0 < path.stat().st_size < 31

    def test_bit_flip_lands_full_length_but_corrupt(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan(bit_flip=1.0), seed=2)
        path = tmp_path / "f.txt"
        payload = "z" * 30 + "\n"
        storage.opener(path, "a").write(payload)
        data = path.read_bytes()
        assert len(data) == len(payload)
        assert data != payload.encode()
        assert data.endswith(b"\n")  # framing newline never flipped

    def test_schedule_is_deterministic_by_seed(self, tmp_path):
        def run(seed, name):
            storage = FaultyStorage(StorageFaultPlan.chaos(0.5), seed=seed)
            handle = storage.opener(tmp_path / name, "a")
            for i in range(30):
                try:
                    handle.write(f"line {i:04d} padded out\n")
                except OSError:
                    pass
            return [(e["kind"], e["append_index"]) for e in storage.events]

        # same seed + same path: identical schedule (appends re-count
        # from 0 per FaultyStorage instance)
        assert run(3, "a.txt") == run(3, "a.txt")
        first = run(7, "d.txt")
        assert first  # chaos(0.5) over 30 writes fires at least once

    def test_opener_rejects_non_append_modes(self, tmp_path):
        storage = FaultyStorage(StorageFaultPlan.none())
        with pytest.raises(ValueError):
            storage.opener(tmp_path / "f.txt", "w")
