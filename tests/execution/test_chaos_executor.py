"""FaultInjectingExecutor: seeded database-layer chaos and its recovery.

Covers the new ExecutionStatus taxonomy members, per-kind injection, the
physical connection drop + SQLExecutor recycling path, slow-query virtual
time charged to deadlines, and determinism of the per-call hashed draws.
"""

import sqlite3

import pytest

from repro.execution.chaos import DbFaultKind, DbFaultPlan, FaultInjectingExecutor
from repro.execution.executor import (
    TRANSIENT_STATUSES,
    ExecutionStatus,
    SQLExecutor,
    classify_sqlite_error,
)
from repro.reliability.deadline import Deadline

QUERY = "SELECT v FROM t ORDER BY v"


def _open() -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:", check_same_thread=False)
    conn.executescript(
        "CREATE TABLE t (v INTEGER);"
        + "".join(f"INSERT INTO t VALUES ({i});" for i in range(8))
    )
    return conn


@pytest.fixture
def executor():
    return SQLExecutor(_open(), timeout_seconds=2.0)


@pytest.fixture
def recycling_executor():
    return SQLExecutor(_open(), timeout_seconds=2.0, reconnect=_open)


class TestTaxonomy:
    @pytest.mark.parametrize(
        "message,expected",
        [
            ("database is locked", ExecutionStatus.LOCKED),
            ("database table is locked: t", ExecutionStatus.LOCKED),
            ("disk I/O error", ExecutionStatus.DISK_ERROR),
            ("database disk image is malformed", ExecutionStatus.DISK_ERROR),
            ("Cannot operate on a closed database.", ExecutionStatus.CONNECTION_ERROR),
            ("unable to open database file", ExecutionStatus.CONNECTION_ERROR),
        ],
    )
    def test_new_statuses_classified(self, message, expected):
        assert classify_sqlite_error(message) is expected

    def test_transient_statuses_are_errors(self):
        for status in TRANSIENT_STATUSES:
            assert status.is_error
            assert status.is_transient

    def test_content_statuses_not_transient(self):
        assert not ExecutionStatus.OK.is_transient
        assert not ExecutionStatus.MISSING_COLUMN.is_transient
        assert not ExecutionStatus.SYNTAX_ERROR.is_transient


class TestErrorInjection:
    def test_locked_fault(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan(locked=1.0))
        outcome = chaos.execute(QUERY)
        assert outcome.status is ExecutionStatus.LOCKED
        assert outcome.status.is_transient
        assert chaos.stats.fault_counts() == {DbFaultKind.LOCKED: 1}

    def test_disk_fault(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan(disk_error=1.0))
        outcome = chaos.execute(QUERY)
        assert outcome.status is ExecutionStatus.DISK_ERROR

    def test_connection_drop_without_reconnect_surfaces(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan(connection_drop=1.0))
        outcome = chaos.execute(QUERY)
        assert outcome.status is ExecutionStatus.CONNECTION_ERROR
        assert chaos.stats.fault_counts() == {DbFaultKind.CONNECTION_DROP: 1}

    def test_connection_drop_recovered_by_recycling(self, recycling_executor):
        chaos = FaultInjectingExecutor(
            recycling_executor, DbFaultPlan(connection_drop=1.0)
        )
        outcome = chaos.execute(QUERY)
        assert outcome.status is ExecutionStatus.OK
        assert outcome.rows == tuple((i,) for i in range(8))
        assert recycling_executor.reconnects >= 1

    def test_recycling_is_bounded(self):
        # a reconnect recipe that keeps handing back dead connections must
        # not loop forever
        def dead():
            conn = sqlite3.connect(":memory:")
            conn.close()
            return conn

        connection = sqlite3.connect(":memory:")
        connection.close()
        executor = SQLExecutor(connection, reconnect=dead, max_reconnects=2)
        outcome = executor.execute("SELECT 1")
        assert outcome.status is ExecutionStatus.CONNECTION_ERROR
        assert executor.reconnects == 2


class TestContentInjection:
    def test_slow_query_charges_deadline(self, executor):
        plan = DbFaultPlan(slow_query=1.0, slow_seconds=4.0)
        chaos = FaultInjectingExecutor(executor, plan)
        deadline = Deadline(10.0)
        outcome = chaos.execute(QUERY, deadline)
        assert outcome.status is ExecutionStatus.OK
        assert outcome.elapsed_seconds >= 4.0
        assert deadline.elapsed_seconds >= 4.0

    def test_slow_query_without_deadline_still_reports_latency(self, executor):
        chaos = FaultInjectingExecutor(
            executor, DbFaultPlan(slow_query=1.0, slow_seconds=2.5)
        )
        assert chaos.execute(QUERY).elapsed_seconds >= 2.5

    def test_truncated_rows_keep_ok_status(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan(truncate_rows=1.0))
        outcome = chaos.execute(QUERY)
        assert outcome.status is ExecutionStatus.OK
        assert len(outcome.rows) == 4  # half of 8

    def test_corrupt_rows_damage_one_row(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan(corrupt_rows=1.0))
        outcome = chaos.execute(QUERY)
        clean = tuple((i,) for i in range(8))
        assert outcome.status is ExecutionStatus.OK
        assert len(outcome.rows) == 8
        assert outcome.rows != clean
        assert sum(1 for a, b in zip(outcome.rows, clean) if a != b) == 1


class TestDeterminism:
    def test_same_seed_same_faults(self):
        plan = DbFaultPlan.chaos(0.5)
        statements = [f"SELECT v FROM t WHERE v > {i}" for i in range(20)]
        runs = []
        for _ in range(2):
            chaos = FaultInjectingExecutor(
                SQLExecutor(_open(), reconnect=_open), plan, seed=11
            )
            runs.append([chaos.execute(sql).status for sql in statements])
        assert runs[0] == runs[1]

    def test_different_seed_different_faults(self):
        plan = DbFaultPlan.chaos(0.5)
        statements = [f"SELECT v FROM t WHERE v > {i}" for i in range(20)]

        def statuses(seed):
            chaos = FaultInjectingExecutor(
                SQLExecutor(_open(), reconnect=_open), plan, seed=seed
            )
            return [chaos.execute(sql).status for sql in statements]

        assert statuses(1) != statuses(2)

    def test_repeated_statement_draws_decorrelated(self):
        """Transient faults are conditions of the moment, not the text:
        re-running one statement faces fresh draws, yet a fresh injector
        with the same seed replays the whole sequence."""
        plan = DbFaultPlan(locked=0.5)
        chaos = FaultInjectingExecutor(SQLExecutor(_open()), plan, seed=0)
        statuses = [chaos.execute(QUERY).status for _ in range(40)]
        assert len(set(statuses)) > 1
        replay = FaultInjectingExecutor(SQLExecutor(_open()), plan, seed=0)
        assert [replay.execute(QUERY).status for _ in range(40)] == statuses

    def test_attempt_salt_decorrelates_hedges(self):
        plan = DbFaultPlan(locked=0.5)
        chaos = FaultInjectingExecutor(SQLExecutor(_open()), plan, seed=0)
        statements = [f"SELECT v FROM t WHERE v > {i}" for i in range(40)]
        primary = [chaos.execute(sql, attempt=0).status for sql in statements]
        hedged = [chaos.execute(sql, attempt=1).status for sql in statements]
        assert primary != hedged  # independent draws per attempt

    def test_total_rate_capped(self):
        assert DbFaultPlan.chaos(0.4).total_rate() == pytest.approx(0.4)
        assert DbFaultPlan(locked=0.9, disk_error=0.9).total_rate() == 1.0


class TestProtocol:
    def test_attribute_passthrough(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan())
        assert chaos.timeout_seconds == executor.timeout_seconds

    def test_no_faults_is_transparent(self, executor):
        chaos = FaultInjectingExecutor(executor, DbFaultPlan())
        outcome = chaos.execute(QUERY)
        assert outcome.status is ExecutionStatus.OK
        assert outcome.rows == tuple((i,) for i in range(8))
        assert chaos.stats.failures == 0
