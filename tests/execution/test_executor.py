"""Execution substrate tests: outcomes, taxonomy, comparison, timeouts."""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.executor import (
    ExecutionError,
    ExecutionOutcome,
    ExecutionStatus,
    SQLExecutor,
    classify_sqlite_error,
    normalize_rows,
    results_match,
)


@pytest.fixture
def executor():
    conn = sqlite3.connect(":memory:")
    conn.executescript(
        """
        CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL);
        INSERT INTO t VALUES (1, 'A', 1.5), (2, 'B', NULL), (3, 'A', 3.0);
        """
    )
    yield SQLExecutor(conn, timeout_seconds=1.0)
    conn.close()


class TestExecute:
    def test_ok(self, executor):
        outcome = executor.execute("SELECT COUNT(*) FROM t")
        assert outcome.status is ExecutionStatus.OK
        assert outcome.rows == ((3,),)
        assert outcome.columns == ("COUNT(*)",)
        assert outcome.elapsed_seconds >= 0

    def test_empty_no_rows(self, executor):
        outcome = executor.execute("SELECT id FROM t WHERE id > 99")
        assert outcome.status is ExecutionStatus.EMPTY
        assert not outcome.status.is_error

    def test_all_null_counts_as_empty(self, executor):
        outcome = executor.execute("SELECT score FROM t WHERE id = 2")
        assert outcome.status is ExecutionStatus.EMPTY

    def test_missing_column(self, executor):
        outcome = executor.execute("SELECT nope FROM t")
        assert outcome.status is ExecutionStatus.MISSING_COLUMN
        assert outcome.status.is_error

    def test_missing_table(self, executor):
        outcome = executor.execute("SELECT x FROM ghost")
        assert outcome.status is ExecutionStatus.MISSING_TABLE

    def test_syntax_error(self, executor):
        outcome = executor.execute("SELECT SELECT FROM t")
        assert outcome.status is ExecutionStatus.SYNTAX_ERROR

    def test_unknown_function(self, executor):
        outcome = executor.execute("SELECT YEAR(name) FROM t")
        assert outcome.status is ExecutionStatus.OTHER_ERROR

    def test_timeout(self, executor):
        # Recursive CTE that would run forever without the progress guard.
        outcome = executor.execute(
            "WITH RECURSIVE r(x) AS (SELECT 1 UNION ALL SELECT x + 1 FROM r) "
            "SELECT COUNT(*) FROM r"
        )
        assert outcome.status is ExecutionStatus.TIMEOUT

    def test_max_rows_cap(self, executor):
        small = SQLExecutor(executor._connection, max_rows=2)
        outcome = small.execute("SELECT id FROM t")
        assert outcome.row_count == 2

    def test_execute_or_raise(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute_or_raise("SELECT nope FROM t")
        assert executor.execute_or_raise("SELECT 1").ok


class TestTimeoutClassification:
    """The progress-handler guard and the two TIMEOUT paths in execute():
    an "interrupted" message vs. elapsed time crossing the deadline."""

    RUNAWAY = (
        "WITH RECURSIVE r(x) AS (SELECT 1 UNION ALL SELECT x + 1 FROM r) "
        "SELECT COUNT(*) FROM r"
    )

    def test_runaway_cross_join_aborted_promptly(self):
        # A hallucinated join producing a combinatorial explosion must be
        # stopped by the guard, not run to completion.
        conn = sqlite3.connect(":memory:")
        conn.executescript(
            "CREATE TABLE n (v INTEGER);"
            + "".join(f"INSERT INTO n VALUES ({i});" for i in range(200))
        )
        executor = SQLExecutor(conn, timeout_seconds=0.2)
        outcome = executor.execute(
            "SELECT COUNT(*) FROM n a, n b, n c, n d WHERE a.v + b.v = c.v + d.v"
        )
        assert outcome.status is ExecutionStatus.TIMEOUT
        assert outcome.elapsed_seconds < 5.0  # aborted, not completed
        conn.close()

    def test_timeout_outcome_carries_error_message(self, executor):
        outcome = executor.execute(self.RUNAWAY)
        assert outcome.status is ExecutionStatus.TIMEOUT
        assert outcome.error  # "interrupted"
        assert outcome.rows == ()

    def test_interrupted_message_classified_even_under_deadline(self, executor):
        # conn.interrupt() from another thread raises "interrupted" long
        # before the deadline: the message path, not the elapsed path.
        import threading

        executor.timeout_seconds = 30.0
        timer = threading.Timer(0.05, executor._connection.interrupt)
        timer.start()
        try:
            outcome = executor.execute(self.RUNAWAY)
        finally:
            timer.cancel()
        assert outcome.status is ExecutionStatus.TIMEOUT
        assert outcome.elapsed_seconds < 30.0

    def test_fast_error_not_misclassified_as_timeout(self, executor):
        # A prepare-time error (missing column) arrives instantly and the
        # progress-handler guard never fires; even with a 0-second budget
        # the outcome must keep its real classification — classifying from
        # `elapsed >= timeout` would mislabel every slow-ish error TIMEOUT
        # and feed the correction loop the wrong few-shot.
        executor.timeout_seconds = 0.0
        outcome = executor.execute("SELECT nope FROM t")
        assert outcome.status is ExecutionStatus.MISSING_COLUMN

    def test_guard_removed_after_timeout(self, executor):
        outcome = executor.execute(self.RUNAWAY)
        assert outcome.status is ExecutionStatus.TIMEOUT
        # the progress handler must not leak into the next statement
        assert executor.execute("SELECT COUNT(*) FROM t").ok

    def test_timeout_is_error_status(self):
        assert ExecutionStatus.TIMEOUT.is_error


class TestClassify:
    @pytest.mark.parametrize(
        "message,expected",
        [
            ("no such column: x", ExecutionStatus.MISSING_COLUMN),
            ("no such table: y", ExecutionStatus.MISSING_TABLE),
            ("ambiguous column name: id", ExecutionStatus.AMBIGUOUS_COLUMN),
            ('near "FROM": syntax error', ExecutionStatus.SYNTAX_ERROR),
            ("unrecognized token", ExecutionStatus.SYNTAX_ERROR),
            ("anything else", ExecutionStatus.OTHER_ERROR),
            # edge cases: case-insensitivity, precedence, degenerate input
            ("NO SUCH COLUMN: T.X", ExecutionStatus.MISSING_COLUMN),
            ("incomplete input", ExecutionStatus.SYNTAX_ERROR),
            ("no such column: x near syntax error", ExecutionStatus.MISSING_COLUMN),
            ("", ExecutionStatus.OTHER_ERROR),
        ],
    )
    def test_messages(self, message, expected):
        assert classify_sqlite_error(message) is expected


class TestNormalize:
    def test_float_integral_collapsed(self):
        assert normalize_rows([(3.0,)]) == ((3,),)

    def test_float_rounded(self):
        assert normalize_rows([(1.23456789,)]) == ((1.234568,),)

    def test_nan_becomes_none(self):
        assert normalize_rows([(float("nan"),)]) == ((None,),)

    def test_bytes_decoded(self):
        assert normalize_rows([(b"abc",)]) == (("abc",),)


def outcome(*rows):
    return ExecutionOutcome(status=ExecutionStatus.OK, rows=normalize_rows(rows))


class TestResultsMatch:
    def test_identical(self):
        assert results_match(outcome((1,), (2,)), outcome((1,), (2,)))

    def test_order_insensitive_default(self):
        assert results_match(outcome((1,), (2,)), outcome((2,), (1,)))

    def test_order_sensitive_mode(self):
        assert not results_match(
            outcome((1,), (2,)), outcome((2,), (1,)), order_sensitive=True
        )

    def test_duplicates_matter(self):
        assert not results_match(outcome((1,), (1,)), outcome((1,),))

    def test_float_int_equivalence(self):
        assert results_match(outcome((3.0,)), outcome((3,)))

    def test_error_never_matches(self):
        bad = ExecutionOutcome(status=ExecutionStatus.SYNTAX_ERROR)
        assert not results_match(bad, outcome((1,)))
        assert not results_match(outcome((1,)), bad)

    def test_mixed_types_sortable(self):
        # Rows mixing None/str/int must not crash the sort.
        assert results_match(
            outcome((None,), ("a",), (1,)), outcome((1,), (None,), ("a",))
        )

    def test_different_width_rows(self):
        assert not results_match(outcome((1, 2),), outcome((1,),))


class TestMatchProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-5, 5), st.text(max_size=3))
            ),
            max_size=6,
        )
    )
    def test_reflexive(self, rows):
        a = outcome(*rows)
        assert results_match(a, a)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(-3, 3)), max_size=5),
        st.lists(st.tuples(st.integers(-3, 3)), max_size=5),
    )
    def test_symmetric(self, rows_a, rows_b):
        a, b = outcome(*rows_a), outcome(*rows_b)
        assert results_match(a, b) == results_match(b, a)
