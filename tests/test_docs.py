"""Documentation consistency tests: the files, benches and API names the
docs reference must actually exist."""

import re
from pathlib import Path


import repro

ROOT = Path(__file__).resolve().parent.parent


def read(name):
    return (ROOT / name).read_text()


class TestReadme:
    def test_referenced_examples_exist(self):
        for match in re.findall(r"examples/(\w+\.py)", read("README.md")):
            assert (ROOT / "examples" / match).exists(), match

    def test_referenced_benches_exist(self):
        for match in re.findall(r"bench_\w+\.py", read("README.md")):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_quickstart_names_importable(self):
        for name in (
            "OpenSearchSQL",
            "PipelineConfig",
            "SimulatedLLM",
            "build_bird_like",
            "evaluate_pipeline",
        ):
            assert hasattr(repro, name), name

    def test_design_and_experiments_linked(self):
        text = read("README.md")
        assert "DESIGN.md" in text
        assert "EXPERIMENTS.md" in text
        assert (ROOT / "DESIGN.md").exists()
        assert (ROOT / "EXPERIMENTS.md").exists()


class TestExperimentIndex:
    def test_every_paper_table_and_figure_has_a_bench(self):
        """The deliverable contract: Tables 1-7 and Figures 3-4 each map to
        a bench module."""
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1_datasets.py",
            "bench_table2_bird_main.py",
            "bench_table3_spider.py",
            "bench_table4_ablation.py",
            "bench_table5_fewshot.py",
            "bench_table6_cost.py",
            "bench_table7_cot.py",
            "bench_fig3_difficulty.py",
            "bench_fig4_candidates.py",
        ):
            assert required in benches

    def test_design_bench_targets_exist(self):
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", read("DESIGN.md")):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_experiments_covers_every_bench(self):
        text = read("EXPERIMENTS.md")
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in text, path.name


class TestPublicApi:
    def test_all_exports_resolve(self):
        import importlib

        for module_name in (
            "repro",
            "repro.sqlkit",
            "repro.schema",
            "repro.embedding",
            "repro.execution",
            "repro.llm",
            "repro.datasets",
            "repro.core",
            "repro.baselines",
            "repro.evaluation",
            "repro.reliability",
            "repro.serving",
            "repro.routing",
            "repro.caching",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__
