"""CLI tests (fast paths only; heavy sweeps are covered by benches)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.benchmark == "bird"
        assert args.model == "gpt-4o"
        assert args.candidates == 21

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "claude", "stats"])


class TestStats:
    def test_prints_both_suites(self):
        code, text = run_cli("stats")
        assert code == 0
        assert "bird-like" in text
        assert "spider-like" in text


class TestRun:
    def test_answers_first_dev_question(self):
        code, text = run_cli("--candidates", "3", "run")
        assert code == 0
        assert "sql      :" in text
        assert "verdict  :" in text

    def test_unknown_question_id(self):
        code, text = run_cli("--candidates", "3", "run", "--question-id", "nope")
        assert code == 2
        assert "error" in text

    def test_specific_question(self):
        from repro.datasets.bird import build_bird_like

        qid = build_bird_like().dev[1].question_id
        code, text = run_cli("--candidates", "3", "run", "--question-id", qid)
        assert code == 0


class TestEvaluate:
    def test_limited_evaluation(self):
        code, text = run_cli("--candidates", "3", "evaluate", "--limit", "10")
        assert code == 0
        assert "EX " in text or "EX  " in text
        assert "R-VES" in text

    def test_spider_benchmark(self):
        code, text = run_cli(
            "--benchmark", "spider", "--candidates", "3", "evaluate", "--limit", "8"
        )
        assert code == 0
        assert "examples : 8" in text

    def test_parallel_matches_serial(self):
        code_1, serial = run_cli("--candidates", "3", "evaluate", "--limit", "8")
        code_4, parallel = run_cli(
            "--candidates", "3", "evaluate", "--limit", "8", "--workers", "4"
        )
        assert code_1 == code_4 == 0
        assert "workers  : 4" in parallel
        assert "latency  :" in parallel
        # Identical EX/EX_G/EX_R lines regardless of worker count.
        pick = lambda text, tag: next(
            line for line in text.splitlines() if line.startswith(tag)
        )
        for tag in ("EX ", "EX_G", "EX_R"):
            assert pick(serial, tag) == pick(parallel, tag)


class TestEvaluateDeadline:
    def test_tight_deadline_degrades_not_crashes(self):
        code, text = run_cli(
            "--candidates", "3", "evaluate", "--limit", "6",
            "--deadline-ms", "0.001",
        )
        assert code == 0
        assert "examples : 6" in text
        assert "deadline_exceeded" in text  # degradation counts line

    def test_generous_deadline_matches_no_deadline(self):
        code_a, plain = run_cli("--candidates", "3", "evaluate", "--limit", "6")
        code_b, timed = run_cli(
            "--candidates", "3", "evaluate", "--limit", "6",
            "--deadline-ms", "1000000000",
        )
        assert code_a == code_b == 0
        pick = lambda text, tag: next(
            line for line in text.splitlines() if line.startswith(tag)
        )
        for tag in ("EX ", "EX_G", "EX_R"):
            assert pick(plain, tag) == pick(timed, tag)


class TestServeBench:
    def test_closed_loop_reports_stats(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "2", "--requests", "12", "--distinct", "4",
        )
        assert code == 0
        assert "served   : 12/12" in text
        assert "cache[result" in text
        assert "throughput" in text

    def test_no_cache_flag(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "2", "--requests", "6", "--distinct", "3", "--no-cache",
        )
        assert code == 0
        assert "0 hits" in text

    def test_async_engine_reports_coalescing(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench", "--async",
            "--workers", "2", "--requests", "12", "--distinct", "4",
        )
        assert code == 0
        assert "served   : 12/12" in text
        assert "async" in text
        assert "coalesced" in text

    def test_async_report_is_deterministic(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        argv = (
            "--candidates", "3", "serve-bench", "--async",
            "--workers", "2", "--requests", "10", "--distinct", "4",
        )
        code, _ = run_cli(
            *argv, "--journal", str(tmp_path / "a.jsonl"),
            "--report-out", str(first),
        )
        assert code == 0
        code, _ = run_cli(
            *argv, "--journal", str(tmp_path / "b.jsonl"),
            "--report-out", str(second),
        )
        assert code == 0
        # deterministic reports are byte-equal; raw journals are not
        # compared (commit payloads carry real wall-clock stage times)
        assert first.read_bytes() == second.read_bytes()
        assert '"coalesced"' in (tmp_path / "a.jsonl").read_text()

    def test_open_loop_can_shed(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "10", "--distinct", "5",
            "--queue-capacity", "1", "--mode", "open", "--no-cache",
        )
        assert code == 0
        assert "shed" in text

    def test_fault_rate_enables_chaos_and_hedging(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "2", "--requests", "10", "--distinct", "4",
            "--fault-rate", "0.3",
        )
        assert code == 0
        assert "served   : 10/10" in text  # chaos contained, nothing lost
        assert "llm faults :" in text
        assert "db faults  :" in text
        assert "hedging" in text

    def test_deadline_ms_reports_exceeded_count(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "2", "--requests", "8", "--distinct", "4",
            "--deadline-ms", "0.001", "--no-cache",
        )
        assert code == 0
        assert "served   : 8/8" in text
        exceeded = next(
            line for line in text.splitlines() if line.startswith("deadlines")
        )
        assert "8 exceeded" in exceeded


class TestServeBenchRobustness:
    def test_backend_pool_reports_replicas(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "2", "--requests", "8", "--distinct", "4",
            "--backends", "3", "--fault-rate", "0.5",
        )
        assert code == 0
        assert "served   : 8/8" in text
        assert "backends" in text
        assert "replicas" in text

    def test_metrics_out_includes_robustness_collectors(self, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "4", "--distinct", "2",
            "--backends", "2", "--metrics-out", str(metrics_path),
        )
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        collectors = snapshot["collected"]
        # collector dicts are flattened into dotted scalar keys
        bulkheads = collectors["bulkheads"]
        assert bulkheads["rejected_quarantined"] == 0
        assert bulkheads["quarantine_threshold"] == 3
        backends = collectors["backends"]
        served = sum(
            count for key, count in backends.items()
            if key.startswith("served.")
        )
        # several LLM calls per served request; conservation is what matters
        assert served == backends["calls"] > 0

    def test_journal_written_and_report_out(self, tmp_path):
        import json

        journal_path = tmp_path / "serve.jsonl"
        report_path = tmp_path / "report.json"
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "6", "--distinct", "3",
            "--journal", str(journal_path), "--report-out", str(report_path),
        )
        assert code == 0
        assert journal_path.exists()
        header = json.loads(journal_path.read_text().splitlines()[0])
        assert header["type"] == "header"
        report = json.loads(report_path.read_text())
        assert report["count"] == 6
        assert "ex" in report

    def test_health_shed_flag_accepted(self):
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "4", "--distinct", "2",
            "--health-shed",
        )
        assert code == 0
        assert "served   : 4/4" in text  # healthy run sheds nothing

    def test_storage_enospc_browns_out_but_serves_everything(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "5", "--distinct", "3",
            "--journal", str(journal_path),
            "--storage-enospc-after", "2",
            "--metrics-out", str(metrics_path),
        )
        assert code == 0  # the disk filled up; the run did not fail
        assert "served   : 5/5" in text
        assert "DISABLED" in text
        assert "un-journaled" in text
        snapshot = metrics_path.read_text()
        assert "repro_storage_journal_disabled_total" in snapshot
        assert "repro_storage_write_errors_total" in snapshot


class TestRecover:
    def test_recover_matches_uninterrupted_report(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        full_report = tmp_path / "full.json"
        recovered_report = tmp_path / "recovered.json"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "6", "--distinct", "3",
            "--journal", str(journal_path), "--report-out", str(full_report),
        )
        assert code == 0
        code, text = run_cli(
            "recover", "--journal", str(journal_path),
            "--report-out", str(recovered_report),
        )
        assert code == 0
        assert "recovered: 6/6" in text
        assert full_report.read_bytes() == recovered_report.read_bytes()

    def test_recover_replays_an_async_journal(self, tmp_path):
        """Coalesced follower commits replay to the same report a full
        async run wrote — the crash-consistency contract extends to the
        async engine's journal grammar."""
        journal_path = tmp_path / "async.jsonl"
        full_report = tmp_path / "full.json"
        recovered_report = tmp_path / "recovered.json"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench", "--async",
            "--workers", "2", "--requests", "8", "--distinct", "3",
            "--journal", str(journal_path), "--report-out", str(full_report),
        )
        assert code == 0
        assert '"coalesced"' in journal_path.read_text()
        code, text = run_cli(
            "recover", "--journal", str(journal_path),
            "--report-out", str(recovered_report),
        )
        assert code == 0
        assert "recovered: 8/8" in text
        assert full_report.read_bytes() == recovered_report.read_bytes()

    def test_recover_resumes_a_truncated_journal(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        full_report = tmp_path / "full.json"
        recovered_report = tmp_path / "recovered.json"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "6", "--distinct", "3",
            "--journal", str(journal_path), "--report-out", str(full_report),
        )
        assert code == 0
        # chop the journal mid-run: keep the header, a few records and a
        # torn half-line, exactly what a SIGKILL leaves behind
        lines = journal_path.read_text().splitlines()
        journal_path.write_text(
            "\n".join(lines[:5]) + "\n" + lines[5][: len(lines[5]) // 2]
        )
        code, text = run_cli(
            "recover", "--journal", str(journal_path),
            "--report-out", str(recovered_report),
        )
        assert code == 0
        assert "recovered: 6/6" in text
        assert full_report.read_bytes() == recovered_report.read_bytes()

    def test_recover_requires_a_header(self, tmp_path):
        journal_path = tmp_path / "no-header.jsonl"
        journal_path.write_text("")
        code, text = run_cli("recover", "--journal", str(journal_path))
        assert code == 2
        assert "no header" in text

    def test_recover_dry_run_prints_counts_without_replaying(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "4", "--distinct", "2",
            "--journal", str(journal_path),
        )
        assert code == 0
        # chop from the last commit onward (also dropping the seal) so
        # there is something pending
        lines = journal_path.read_text().splitlines()
        last_commit = max(
            i for i, line in enumerate(lines)
            if '"type": "committed"' in line
        )
        journal_path.write_text("\n".join(lines[:last_commit]) + "\n")
        code, text = run_cli(
            "recover", "--journal", str(journal_path), "--dry-run",
        )
        assert code == 0
        assert "total: 3 committed, 1 pending, 0 corrupt lines" in text
        assert "recovered:" not in text  # counts only, nothing replayed

    def test_recover_corrupt_journal_fails_with_one_typed_line(
        self, tmp_path
    ):
        journal_path = tmp_path / "serve.jsonl"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "4", "--distinct", "2",
            "--journal", str(journal_path),
        )
        assert code == 0
        lines = journal_path.read_text().splitlines()
        lines[2] = lines[2][:12] + "##" + lines[2][14:]  # interior damage
        journal_path.write_text("\n".join(lines) + "\n")
        code, text = run_cli("recover", "--journal", str(journal_path))
        assert code == 2
        assert text.startswith("error: ")
        assert "fsck" in text  # points the operator at the repair tool
        assert len(text.strip().splitlines()) == 1  # no traceback


class TestFsck:
    def seeded_journal(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "4", "--distinct", "2",
            "--journal", str(journal_path),
        )
        assert code == 0
        return journal_path

    def test_clean_journal_passes(self, tmp_path):
        journal_path = self.seeded_journal(tmp_path)
        code, text = run_cli("fsck", "--journal", str(journal_path))
        assert code == 0
        assert "fsck: clean" in text
        assert "4 committed" in text

    def test_torn_tail_flagged_as_safe(self, tmp_path):
        journal_path = self.seeded_journal(tmp_path)
        lines = journal_path.read_text().splitlines()
        journal_path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        code, text = run_cli("fsck", "--journal", str(journal_path))
        assert code == 1
        assert "torn tail (safe to truncate)" in text

    def test_detect_repair_then_clean(self, tmp_path):
        journal_path = self.seeded_journal(tmp_path)
        lines = journal_path.read_text().splitlines()
        lines[2] = lines[2][:12] + "##" + lines[2][14:]
        journal_path.write_text("\n".join(lines) + "\n")

        code, text = run_cli("fsck", "--journal", str(journal_path))
        assert code == 1
        assert "CORRUPT" in text
        assert "--repair" in text

        code, text = run_cli(
            "fsck", "--journal", str(journal_path), "--repair",
        )
        assert code == 0
        assert "repaired" in text
        assert "quarantined" in text

        code, text = run_cli("fsck", "--journal", str(journal_path))
        assert code == 0
        assert "fsck: clean" in text
        # and the repaired journal still recovers (the damaged record is
        # simply pending again)
        code, text = run_cli("recover", "--journal", str(journal_path))
        assert code == 0
        assert "recovered: 4/4" in text

    def test_missing_journal_is_a_typed_error(self, tmp_path):
        code, text = run_cli(
            "fsck", "--journal", str(tmp_path / "missing.jsonl"),
        )
        assert code == 2
        assert text.startswith("error: ")


class TestCrashFuzz:
    def test_tiny_campaign_certifies_and_is_deterministic(self, tmp_path):
        argv = (
            "--candidates", "3", "crash-fuzz",
            "--shards", "2", "--requests", "4", "--distinct", "2",
            "--limit", "2", "--bitflips", "1", "--no-torn", "--no-routing",
        )
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        code, text = run_cli(*argv, "--out", str(first))
        assert code == 0
        assert "CERTIFIED" in text
        assert "FAIL" not in text
        code, _ = run_cli(*argv, "--out", str(second))
        assert code == 0
        assert first.read_bytes() == second.read_bytes()


class TestServeBenchCluster:
    def test_shards_require_a_journal_directory(self):
        code, text = run_cli("serve-bench", "--shards", "2")
        assert code == 2
        assert "--journal" in text

    def test_cluster_flags_reject_unsupported_modes(self, tmp_path):
        code, text = run_cli(
            "serve-bench", "--shards", "2", "--journal", str(tmp_path),
            "--fault-rate", "0.2",
        )
        assert code == 2
        assert "--fault-rate" in text

    def test_cluster_refuses_async(self, tmp_path):
        code, text = run_cli(
            "serve-bench", "--shards", "2", "--journal", str(tmp_path),
            "--async",
        )
        assert code == 2
        assert "--async" in text

    def test_kill_worker_run_recovers_to_single_process_report(self, tmp_path):
        # The PR's acceptance criterion end to end, through the CLI: a
        # 3-shard run with worker 1 SIGKILLed mid-run completes, and the
        # directory-recovered merged report is byte-identical to the
        # undisturbed single-process run of the same seed.
        reference = tmp_path / "reference.json"
        code, _ = run_cli(
            "--candidates", "3", "serve-bench",
            "--workers", "1", "--requests", "8", "--distinct", "6",
            "--pool", "spread",
            "--journal", str(tmp_path / "single.jsonl"),
            "--report-out", str(reference),
        )
        assert code == 0
        shard_dir = tmp_path / "segments"
        recovered = tmp_path / "recovered.json"
        code, text = run_cli(
            "--candidates", "3", "serve-bench",
            "--shards", "3", "--kill-worker", "1", "--restart-budget", "1",
            "--requests", "8", "--distinct", "6", "--pool", "spread",
            "--journal", str(shard_dir),
        )
        assert code == 0
        assert "1 deaths, 1 restarts" in text
        assert "14 dispatched" not in text  # sanity: 8-request workload
        code, text = run_cli(
            "recover", "--journal", str(shard_dir),
            "--report-out", str(recovered),
        )
        assert code == 0
        assert "segments : 3" in text
        assert "recovered: 8/8" in text
        assert reference.read_bytes() == recovered.read_bytes()


class TestTrace:
    def test_renders_span_tree_and_stage_costs(self):
        code, text = run_cli("--candidates", "3", "trace")
        assert code == 0
        assert "trace " in text
        for stage in ("preprocessing", "extraction", "generation", "refinement"):
            assert stage in text
        assert "stage costs:" in text
        assert "tokens=" in text

    def test_json_export(self):
        import json

        code, text = run_cli("--candidates", "3", "trace", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["spans"]["name"] == "request"
        children = {c["name"] for c in payload["spans"]["children"]}
        assert {"preprocessing", "extraction", "generation", "refinement"} <= children

    def test_unknown_question_id(self):
        code, text = run_cli("--candidates", "3", "trace", "--question-id", "nope")
        assert code == 2
        assert "error" in text

    def test_fault_rate_surfaces_events(self):
        code, text = run_cli(
            "--candidates", "3", "trace", "--fault-rate", "0.25",
        )
        assert code == 0
        assert "trace " in text  # chaos contained: trace still renders


class TestMetrics:
    def test_text_render_lists_serving_counters(self):
        code, text = run_cli(
            "--candidates", "3", "metrics", "--requests", "6", "--distinct", "3",
        )
        assert code == 0
        assert "repro_serving_requests_total" in text
        assert "serving." in text  # collector-flattened legacy stats

    def test_json_snapshot_shape(self):
        import json

        code, text = run_cli(
            "--candidates", "3", "metrics", "--requests", "6", "--distinct", "3",
            "--format", "json",
        )
        assert code == 0
        payload = json.loads(text)
        assert "repro_serving_requests_total" in payload["metrics"]
        assert "serving" in payload["collected"]

    def test_jsonl_one_sample_per_line(self):
        import json

        code, text = run_cli(
            "--candidates", "3", "metrics", "--requests", "6", "--distinct", "3",
            "--format", "jsonl",
        )
        assert code == 0
        lines = [json.loads(line) for line in text.strip().splitlines()]
        assert lines
        for line in lines:
            assert set(line) == {"metric", "type", "labels", "value"}


class TestEvaluateStageCosts:
    def test_evaluate_reports_per_stage_costs(self):
        code, text = run_cli("--candidates", "3", "evaluate", "--limit", "6")
        assert code == 0
        assert "stage costs (per request):" in text
        for stage in ("extraction", "generation", "refinement"):
            assert stage in text
