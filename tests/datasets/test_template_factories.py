"""Direct tests of the shared question-template factories."""

import numpy as np
import pytest

from repro.datasets.build import build_database
from repro.datasets.domains import common
from repro.datasets.domains.healthcare import DOMAIN as HEALTHCARE
from repro.sqlkit.parser import parse_select


@pytest.fixture(scope="module")
def ctx():
    _built, context = build_database(HEALTHCARE, np.random.default_rng(2))
    return context


def draft_from(spec, ctx, seed=0, attempts=25):
    rng = np.random.default_rng(seed)
    for _ in range(attempts):
        draft = spec.maker(ctx, rng)
        if draft is not None:
            return draft
    pytest.fail(f"template {spec.template_id} produced nothing")


class TestSimpleFactories:
    def test_count_where_dirty(self, ctx):
        spec = common.count_where_dirty(
            "t", "Patient", "Diagnosis", "How many with {value}?"
        )
        draft = draft_from(spec, ctx)
        assert "COUNT(*)" in draft.sql
        assert draft.mentions[0].surface in draft.question
        parse_select(draft.sql)

    def test_clean_flag(self, ctx):
        spec = common.count_where_dirty(
            "t", "Patient", "Diagnosis", "How many with {value}?", clean=True
        )
        for seed in range(6):
            draft = draft_from(spec, ctx, seed=seed)
            assert not draft.mentions[0].is_dirty

    def test_count_not_equal(self, ctx):
        spec = common.count_not_equal(
            "t", "Patient", "Diagnosis", "Not {value}?"
        )
        draft = draft_from(spec, ctx)
        assert "<>" in draft.sql

    def test_count_two_filters_has_two_mentions(self, ctx):
        spec = common.count_two_filters(
            "t", "Patient", "SEX", "Admission", "{value_a} and {value_b}?"
        )
        draft = draft_from(spec, ctx)
        assert len(draft.mentions) == 2
        assert draft.mentions[0].column == "SEX"
        assert draft.mentions[1].column == "Admission"


class TestStructuredFactories:
    def test_group_having(self, ctx):
        spec = common.group_having_count(
            "t", "Patient", "Diagnosis", "At least {n}?"
        )
        draft = draft_from(spec, ctx)
        select = parse_select(draft.sql)
        assert select.group_by
        assert select.having is not None

    def test_date_between_double_strftime(self, ctx):
        spec = common.date_between_count(
            "t", "Patient", "First Date", "Between {lo} and {hi}?"
        )
        draft = draft_from(spec, ctx)
        assert draft.sql.count("STRFTIME") == 2
        assert "date_format" in spec.traits

    def test_top_k_has_offsetless_limit(self, ctx):
        spec = common.top_k_list(
            "t", "Laboratory", "ID", "GLU", "Top {k}?", ks=(3,)
        )
        draft = draft_from(spec, ctx)
        select = parse_select(draft.sql)
        assert select.limit == 3
        assert "IS NOT NULL" in draft.sql

    def test_superlative_rank_offset(self, ctx):
        spec = common.superlative_nullable(
            "t", "Laboratory", "ID", "GLU", "The {rank}highest?", ranks=(3,)
        )
        draft = draft_from(spec, ctx)
        select = parse_select(draft.sql)
        assert select.limit == 1
        assert select.offset == 2
        assert "third" in draft.question

    def test_group_top_rank(self, ctx):
        spec = common.group_top(
            "t", "Patient", "Diagnosis", "The {rank}most?", ranks=(2,)
        )
        draft = draft_from(spec, ctx)
        assert "second" in draft.question
        assert parse_select(draft.sql).offset == 1


class TestJoinFactories:
    def test_count_join_distinct_assembles(self, ctx):
        spec = common.count_join_distinct(
            "t", "Patient", "ID", "Examination", "Symptoms", "With {value}?"
        )
        draft = draft_from(spec, ctx)
        select = parse_select(draft.sql)
        assert select.joins
        assert "DISTINCT" in draft.sql

    def test_join_avg(self, ctx):
        spec = common.join_avg_dirty(
            "t", "Laboratory", "IGA", "Patient", "Diagnosis", "Avg for {value}?"
        )
        draft = draft_from(spec, ctx)
        assert "AVG(" in draft.sql
        assert parse_select(draft.sql).joins

    def test_join_superlative(self, ctx):
        spec = common.join_superlative_dirty(
            "t", "Patient", "Birthday", "Patient", "Diagnosis",
            "Laboratory", "GLU", "For {value}?",
        )
        draft = draft_from(spec, ctx)
        select = parse_select(draft.sql)
        assert select.order_by
        assert select.limit == 1
        assert "max_vs_limit" in spec.traits


class TestEvidenceFactory:
    def test_bounds_jittered_into_evidence(self, ctx):
        spec = common.evidence_formula_count(
            "t", "Laboratory", "IGG", "a thing", 900, 2000, "How many {term}?"
        )
        evidences = {draft_from(spec, ctx, seed=s).evidence for s in range(8)}
        assert len(evidences) > 1  # jitter produces distinct formulas
        for evidence in evidences:
            assert "refers to" in evidence

    def test_sql_matches_evidence_bounds(self, ctx):
        spec = common.evidence_formula_count(
            "t", "Laboratory", "IGG", "a thing", 900, 2000, "How many {term}?"
        )
        draft = draft_from(spec, ctx)
        import re

        bounds = re.findall(r"[<>] (\d+)", draft.sql)
        for bound in bounds:
            assert bound in draft.evidence
