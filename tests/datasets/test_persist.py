"""Benchmark save/load round-trip tests."""

import pytest

from repro.datasets.persist import load_benchmark, save_benchmark


@pytest.fixture(scope="module")
def round_tripped(tiny_benchmark, tmp_path_factory):
    root = tmp_path_factory.mktemp("bench")
    save_benchmark(tiny_benchmark, root)
    return load_benchmark(root)


class TestRoundTrip:
    def test_manifest_files_written(self, tiny_benchmark, tmp_path):
        root = save_benchmark(tiny_benchmark, tmp_path / "out")
        assert (root / "manifest.json").exists()
        assert (root / "databases" / "healthcare.sqlite").exists()
        assert (root / "dev.jsonl").exists()

    def test_name_preserved(self, tiny_benchmark, round_tripped):
        assert round_tripped.name == tiny_benchmark.name

    def test_examples_identical(self, tiny_benchmark, round_tripped):
        for split in ("train", "dev", "test"):
            assert round_tripped.split(split) == tiny_benchmark.split(split)

    def test_database_contents_identical(self, tiny_benchmark, round_tripped):
        for db_id in tiny_benchmark.databases:
            sql = "SELECT COUNT(*) FROM " + tiny_benchmark.database(
                db_id
            ).schema.tables[0].name
            original = tiny_benchmark.database(db_id).executor().execute(sql)
            loaded = round_tripped.database(db_id).executor().execute(sql)
            assert original.rows == loaded.rows

    def test_schema_descriptions_survive(self, tiny_benchmark, round_tripped):
        original = tiny_benchmark.database("healthcare").schema
        loaded = round_tripped.database("healthcare").schema
        for table in original.tables:
            loaded_table = loaded.table(table.name)
            assert loaded_table.description == table.description
            for column in table.columns:
                assert (
                    loaded_table.column(column.name).description
                    == column.description
                )

    def test_value_examples_survive(self, tiny_benchmark, round_tripped):
        original = tiny_benchmark.database("healthcare").schema
        loaded = round_tripped.database("healthcare").schema
        column = original.table("Patient").column("Diagnosis")
        assert (
            loaded.table("Patient").column("Diagnosis").value_examples
            == column.value_examples
        )

    def test_foreign_keys_survive(self, tiny_benchmark, round_tripped):
        original = tiny_benchmark.database("healthcare").schema
        loaded = round_tripped.database("healthcare").schema
        assert len(loaded.foreign_keys) == len(original.foreign_keys)

    def test_gold_sql_executes_on_loaded(self, round_tripped):
        for example in round_tripped.dev[:10]:
            outcome = (
                round_tripped.database(example.db_id).executor().execute(example.gold_sql)
            )
            assert not outcome.status.is_error

    def test_pipeline_runs_on_loaded(self, round_tripped, llm):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import OpenSearchSQL

        pipeline = OpenSearchSQL(round_tripped, llm, PipelineConfig(n_candidates=3))
        result = pipeline.answer(round_tripped.dev[0])
        assert result.final_sql

    def test_save_overwrites(self, tiny_benchmark, tmp_path):
        root = tmp_path / "twice"
        save_benchmark(tiny_benchmark, root)
        save_benchmark(tiny_benchmark, root)  # no error on rewrite
        assert load_benchmark(root).dev == tiny_benchmark.dev
