"""Full BIRD-like / Spider-like suite tests: coverage, profile contrasts,
the mini-dev sampler, and gold validity across every domain."""

from collections import Counter


from repro.datasets.bird import BIRD_DOMAINS, mini_dev
from repro.datasets.types import DIFFICULTIES
from repro.execution.executor import ExecutionStatus
from repro.sqlkit.parser import parse_select


class TestBirdSuite:
    def test_ten_domains(self, bird_benchmark):
        assert len(bird_benchmark.databases) == 10

    def test_all_difficulties_in_dev(self, bird_benchmark):
        present = {e.difficulty for e in bird_benchmark.dev}
        assert present == set(DIFFICULTIES)

    def test_all_trick_traits_in_dev(self, bird_benchmark):
        traits = {t for e in bird_benchmark.dev for t in e.traits}
        assert {
            "needs_distinct",
            "date_format",
            "evidence_formula",
            "nullable_min",
            "max_vs_limit",
        } <= traits

    def test_dirty_values_present(self, bird_benchmark):
        dirty = sum(e.has_dirty_values for e in bird_benchmark.dev)
        assert dirty > len(bird_benchmark.dev) * 0.1

    def test_every_gold_valid(self, bird_benchmark):
        for e in bird_benchmark.dev + bird_benchmark.test:
            parse_select(e.gold_sql)
            outcome = bird_benchmark.database(e.db_id).executor().execute(e.gold_sql)
            assert outcome.status is ExecutionStatus.OK, (e.question_id, outcome.error)

    def test_train_covers_dev_template_families(self, bird_benchmark):
        """Dynamic few-shot needs same-family train examples for most dev
        questions (the BIRD situation MQs retrieval exploits)."""
        train_templates = {e.template_id for e in bird_benchmark.train}
        covered = sum(
            e.template_id in train_templates for e in bird_benchmark.dev
        )
        assert covered / len(bird_benchmark.dev) > 0.9

    def test_domain_names(self):
        assert [d.name for d in BIRD_DOMAINS] == [
            "healthcare", "education", "finance", "hockey",
            "retail", "music", "library", "blockchain",
            "energy", "realestate",
        ]


class TestSpiderSuite:
    def test_six_domains(self, spider_benchmark):
        assert len(spider_benchmark.databases) == 6

    def test_no_dirty_values(self, spider_benchmark):
        assert not any(e.has_dirty_values for e in spider_benchmark.dev)

    def test_simpler_difficulty_profile(self, bird_benchmark, spider_benchmark):
        def challenging_share(benchmark):
            counts = Counter(e.difficulty for e in benchmark.dev)
            return counts.get("challenging", 0) / len(benchmark.dev)

        assert challenging_share(spider_benchmark) < challenging_share(bird_benchmark)

    def test_smaller_schemas(self, bird_benchmark, spider_benchmark):
        def avg_columns(benchmark):
            sizes = [b.schema.column_count() for b in benchmark.databases.values()]
            return sum(sizes) / len(sizes)

        assert avg_columns(spider_benchmark) < avg_columns(bird_benchmark)

    def test_every_gold_valid(self, spider_benchmark):
        for e in spider_benchmark.dev:
            outcome = (
                spider_benchmark.database(e.db_id).executor().execute(e.gold_sql)
            )
            assert outcome.status is ExecutionStatus.OK


class TestMiniDev:
    def test_size_respected(self, bird_benchmark):
        mini = mini_dev(bird_benchmark, size=60)
        assert len(mini) <= 62  # rounding slack

    def test_subset_of_dev(self, bird_benchmark):
        mini = mini_dev(bird_benchmark, size=60)
        dev_ids = {e.question_id for e in bird_benchmark.dev}
        assert all(e.question_id in dev_ids for e in mini)

    def test_stratification(self, bird_benchmark):
        mini = mini_dev(bird_benchmark, size=90)
        dev = Counter(e.difficulty for e in bird_benchmark.dev)
        sub = Counter(e.difficulty for e in mini)
        for difficulty in DIFFICULTIES:
            dev_share = dev[difficulty] / len(bird_benchmark.dev)
            sub_share = sub[difficulty] / len(mini)
            assert abs(dev_share - sub_share) < 0.12

    def test_oversize_returns_all(self, bird_benchmark):
        mini = mini_dev(bird_benchmark, size=10_000)
        assert len(mini) == len(bird_benchmark.dev)

    def test_deterministic(self, bird_benchmark):
        a = mini_dev(bird_benchmark, size=50, seed=1)
        b = mini_dev(bird_benchmark, size=50, seed=1)
        assert [e.question_id for e in a] == [e.question_id for e in b]
