"""Example/ValueMention type tests."""

import pytest

from repro.datasets.types import DIFFICULTIES, Example, ValueMention


class TestValueMention:
    def test_dirty_detection(self):
        assert ValueMention("John", "JOHN", "t", "c").is_dirty
        assert not ValueMention("JOHN", "JOHN", "t", "c").is_dirty


class TestExample:
    def base(self, **kwargs):
        defaults = dict(
            question_id="q1",
            db_id="db",
            question="How many?",
            gold_sql="SELECT COUNT(*) FROM t",
        )
        defaults.update(kwargs)
        return Example(**defaults)

    def test_defaults(self):
        ex = self.base()
        assert ex.difficulty == "simple"
        assert ex.traits == ()
        assert not ex.has_dirty_values

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ValueError):
            self.base(difficulty="impossible")

    @pytest.mark.parametrize("difficulty", DIFFICULTIES)
    def test_valid_difficulties(self, difficulty):
        assert self.base(difficulty=difficulty).difficulty == difficulty

    def test_dirty_value_flag(self):
        ex = self.base(
            value_mentions=(ValueMention("John", "JOHN", "t", "c"),)
        )
        assert ex.has_dirty_values

    def test_frozen(self):
        ex = self.base()
        with pytest.raises(AttributeError):
            ex.question = "other"
