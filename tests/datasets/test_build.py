"""Benchmark assembly tests: validation, splits, dirtiness, enrichment."""

import numpy as np
import pytest

from repro.datasets.build import surface_variant
from repro.execution.executor import ExecutionStatus
from repro.sqlkit.parser import parse_select


class TestBuildBenchmark:
    def test_splits_populated(self, tiny_benchmark):
        assert tiny_benchmark.train
        assert tiny_benchmark.dev
        assert tiny_benchmark.test

    def test_split_accessor(self, tiny_benchmark):
        assert tiny_benchmark.split("train") is tiny_benchmark.train
        with pytest.raises(ValueError):
            tiny_benchmark.split("validation")

    def test_question_ids_unique(self, tiny_benchmark):
        ids = [
            e.question_id
            for split in ("train", "dev", "test")
            for e in tiny_benchmark.split(split)
        ]
        assert len(ids) == len(set(ids))

    def test_questions_unique_across_splits(self, tiny_benchmark):
        keys = [
            (e.question, e.evidence)
            for split in ("train", "dev", "test")
            for e in tiny_benchmark.split(split)
        ]
        assert len(keys) == len(set(keys))

    def test_every_gold_parses(self, tiny_benchmark):
        for split in ("train", "dev", "test"):
            for e in tiny_benchmark.split(split):
                parse_select(e.gold_sql)

    def test_every_gold_executes_nonempty(self, tiny_benchmark):
        for split in ("train", "dev", "test"):
            for e in tiny_benchmark.split(split):
                executor = tiny_benchmark.database(e.db_id).executor()
                outcome = executor.execute(e.gold_sql)
                assert outcome.status is ExecutionStatus.OK, (
                    e.question_id, outcome.error,
                )

    def test_mentions_consistent_with_database(self, tiny_benchmark):
        """Every stored mention value must actually exist in its column."""
        for e in tiny_benchmark.dev:
            executor = tiny_benchmark.database(e.db_id).executor()
            for mention in e.value_mentions:
                quoted = mention.stored.replace("'", "''")
                outcome = executor.execute(
                    f'SELECT 1 FROM "{mention.table}" '
                    f'WHERE "{mention.column}" = \'{quoted}\' LIMIT 1'
                )
                assert outcome.row_count == 1, (e.question_id, mention)

    def test_surfaces_appear_in_question(self, tiny_benchmark):
        for e in tiny_benchmark.dev:
            for mention in e.value_mentions:
                assert mention.surface in e.question, (e.question_id, mention)

    def test_template_ids_set(self, tiny_benchmark):
        assert all(e.template_id for e in tiny_benchmark.dev)

    def test_statistics(self, tiny_benchmark):
        stats = tiny_benchmark.statistics
        assert stats["databases"] == 2
        assert stats["train"] == len(tiny_benchmark.train)

    def test_schema_value_examples_enriched(self, tiny_benchmark):
        schema = tiny_benchmark.database("healthcare").schema
        assert schema.table("Patient").column("Diagnosis").value_examples

    def test_determinism(self):
        from repro.datasets.build import build_benchmark
        from repro.datasets.domains.hockey import DOMAIN

        a = build_benchmark("x", [DOMAIN], 1, 1, 1, seed=9)
        b = build_benchmark("x", [DOMAIN], 1, 1, 1, seed=9)
        assert [e.question for e in a.dev] == [e.question for e in b.dev]
        assert [e.gold_sql for e in a.dev] == [e.gold_sql for e in b.dev]


class TestSurfaceVariant:
    def test_clean_fraction(self):
        rng = np.random.default_rng(0)
        variants = [surface_variant("RUNNING DEBT", rng) for _ in range(300)]
        dirty = sum(v != "RUNNING DEBT" for v in variants)
        assert 0.2 < dirty / 300 < 0.5  # dirty_prob = 0.35

    def test_forced_dirty_differs(self):
        rng = np.random.default_rng(0)
        variants = {
            surface_variant("RUNNING DEBT", rng, dirty_prob=1.0) for _ in range(20)
        }
        assert all(v != "RUNNING DEBT" for v in variants)

    def test_numeric_string_unchanged(self):
        rng = np.random.default_rng(0)
        assert surface_variant("12345", rng, dirty_prob=1.0) == "12345"

    def test_zero_dirty_prob(self):
        rng = np.random.default_rng(0)
        assert surface_variant("ABC", rng, dirty_prob=0.0) == "ABC"
