"""Per-domain integrity tests: every domain spec builds a valid database
and every template can produce validated drafts."""

import numpy as np
import pytest

from repro.datasets.bird import BIRD_DOMAINS
from repro.datasets.build import build_database
from repro.datasets.domains.spider_domains import SPIDER_DOMAINS
from repro.schema.joins import join_path
from repro.sqlkit.parser import parse_select

ALL_DOMAINS = BIRD_DOMAINS + SPIDER_DOMAINS


@pytest.fixture(scope="module")
def built():
    rng = np.random.default_rng(5)
    return {spec.name: build_database(spec, rng) for spec in ALL_DOMAINS}


@pytest.mark.parametrize("spec", ALL_DOMAINS, ids=lambda s: s.name)
class TestDomainIntegrity:
    def test_database_builds_and_has_rows(self, spec, built):
        database, context = built[spec.name]
        for table in database.schema.tables:
            outcome = context.executor.execute(
                f'SELECT COUNT(*) FROM "{table.name}"'
            )
            assert outcome.rows[0][0] > 0, f"{spec.name}.{table.name} is empty"

    def test_fk_graph_connected(self, spec, built):
        database, _context = built[spec.name]
        names = list(database.schema.table_names)
        # Every table reachable from the first through the FK graph.
        steps = join_path(database.schema, names)
        reached = {names[0].lower()} | {s[1] for s in steps}
        assert reached == {n.lower() for n in names}

    def test_templates_produce_valid_drafts(self, spec, built):
        _database, context = built[spec.name]
        rng = np.random.default_rng(11)
        for template in spec.templates:
            produced = None
            for _attempt in range(30):
                draft = template.maker(context, rng)
                if draft is not None:
                    produced = draft
                    break
            assert produced is not None, f"{spec.name}:{template.template_id}"
            parse_select(produced.sql)  # gold must parse in our dialect

    def test_template_ids_unique(self, spec, built):
        ids = [t.template_id for t in spec.templates]
        assert len(ids) == len(set(ids))

    def test_difficulties_valid(self, spec, built):
        from repro.datasets.types import DIFFICULTIES

        for template in spec.templates:
            assert template.difficulty in DIFFICULTIES

    def test_mentions_point_at_real_columns(self, spec, built):
        database, context = built[spec.name]
        rng = np.random.default_rng(13)
        for template in spec.templates:
            for _attempt in range(10):
                draft = template.maker(context, rng)
                if draft is None:
                    continue
                for mention in draft.mentions:
                    table = database.schema.table(mention.table)
                    assert table.has_column(mention.column)
                break


class TestDomainVariety:
    def test_bird_has_twelve_plus_templates_each(self):
        for spec in BIRD_DOMAINS:
            assert len(spec.templates) >= 12, spec.name

    def test_spider_has_eight_templates_each(self):
        for spec in SPIDER_DOMAINS:
            assert len(spec.templates) >= 8, spec.name

    def test_same_name_columns_exist_in_bird(self):
        """The same-name-column trap (misqualification channel) needs at
        least one domain with cross-table duplicate column names."""
        found = False
        for spec in BIRD_DOMAINS:
            for table in spec.schema.tables:
                for column in table.columns:
                    if len(spec.schema.same_name_columns(column.name)) > 1:
                        found = True
        assert found

    def test_nullable_columns_exist_everywhere(self):
        """Style alignment needs nullable sort keys in every BIRD domain."""
        for spec in BIRD_DOMAINS:
            nullable = [
                c
                for t in spec.schema.tables
                for c in t.columns
                if "nullable" in c.description
            ]
            assert nullable, spec.name
