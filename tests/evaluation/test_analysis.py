"""Failure-analysis and VES metric tests."""

import pytest

from repro.datasets.types import Example
from repro.evaluation.analysis import analyze_failures
from repro.evaluation.metrics import ExampleScore, ves


def example(qid, difficulty="simple", traits=(), template="t:x"):
    return Example(
        question_id=qid,
        db_id="d",
        question="?",
        gold_sql="SELECT 1",
        difficulty=difficulty,
        traits=traits,
        template_id=template,
    )


def score(qid, correct, status="ok", difficulty="simple"):
    return ExampleScore(
        question_id=qid,
        correct=correct,
        predicted_status=status,
        difficulty=difficulty,
        gold_time=1.0,
        predicted_time=1.0,
    )


class TestAnalyzeFailures:
    def test_counts(self):
        examples = [example("a"), example("b", traits=("date_format",)), example("c")]
        scores = [score("a", True), score("b", False, "empty"), score("c", False)]
        breakdown = analyze_failures(examples, scores)
        assert breakdown.total == 3
        assert breakdown.wrong == 2
        assert breakdown.error_rate == pytest.approx(2 / 3)
        assert breakdown.by_status["empty"] == 1
        assert breakdown.by_trait["date_format"] == 1
        assert breakdown.by_trait["(no traits)"] == 1
        assert breakdown.failed_question_ids == ["b", "c"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            analyze_failures([example("a")], [])

    def test_misalignment_rejected(self):
        with pytest.raises(ValueError):
            analyze_failures([example("a")], [score("b", True)])

    def test_render_mentions_buckets(self):
        examples = [example("a", difficulty="challenging")]
        scores = [score("a", False, "syntax_error", difficulty="challenging")]
        text = analyze_failures(examples, scores).render()
        assert "syntax_error" in text
        assert "challenging" in text
        assert "error rate" in text

    def test_no_failures(self):
        breakdown = analyze_failures([example("a")], [score("a", True)])
        assert breakdown.wrong == 0
        assert "0/1 wrong" in breakdown.render()

    def test_end_to_end_on_pipeline(self, tiny_pipeline, tiny_benchmark):
        from repro.evaluation.runner import evaluate_pipeline

        examples = tiny_benchmark.dev
        report = evaluate_pipeline(tiny_pipeline, examples)
        breakdown = analyze_failures(examples, report.scores)
        assert breakdown.total == len(examples)
        assert 0 <= breakdown.error_rate <= 1


class TestVES:
    def test_empty(self):
        assert ves([]) == 0.0

    def test_incorrect_contributes_zero(self):
        assert ves([score("a", False)]) == 0.0

    def test_equal_speed(self):
        assert ves([score("a", True)]) == pytest.approx(100.0)

    def test_faster_prediction_exceeds_100(self):
        fast = ExampleScore(
            question_id="a", correct=True, gold_time=4.0, predicted_time=1.0
        )
        assert ves([fast]) == pytest.approx(200.0)

    def test_report_property(self, tiny_pipeline, tiny_benchmark):
        from repro.evaluation.runner import evaluate_pipeline

        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:5])
        assert report.ves >= 0.0
