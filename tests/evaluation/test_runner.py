"""Evaluation runner and report formatting tests."""

import pytest

from repro.caching import GoldResultCache
from repro.evaluation.report import format_table
from repro.evaluation.runner import evaluate_pipeline, evaluate_system


class TestEvaluatePipeline:
    def test_report_populated(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:6])
        assert report.count == 6
        assert len(report.generation_scores) == 6
        assert len(report.refined_scores) == 6
        assert 0 <= report.ex <= 100
        assert 0 <= report.r_ves <= 125

    def test_stage_monotonicity_weak(self, tiny_pipeline, tiny_benchmark):
        """EX_R >= EX_G should hold in aggregate (refinement only fixes)."""
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev)
        assert report.ex_r >= report.ex_g - 5  # small-sample slack

    def test_difficulty_breakdown(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev)
        breakdown = report.ex_by_difficulty()
        assert breakdown
        assert all(0 <= v <= 100 for v in breakdown.values())

    def test_cost_merged(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:3])
        assert report.cost.stage("generation").total_tokens > 0

    def test_named_report(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:1], name="x")
        assert report.system == "x"


class TestParallelEvaluation:
    def test_workers_match_serial_scores(self, tiny_pipeline, tiny_benchmark):
        """The tentpole determinism property: thread scheduling must not
        change a single score (per-call hashed seeds + reentrant answer)."""
        examples = tiny_benchmark.dev
        serial = evaluate_pipeline(tiny_pipeline, examples)
        parallel = evaluate_pipeline(tiny_pipeline, examples, workers=4)
        assert parallel.ex == serial.ex
        assert parallel.ex_g == serial.ex_g
        assert parallel.ex_r == serial.ex_r
        assert [s.question_id for s in parallel.scores] == [
            s.question_id for s in serial.scores
        ]
        assert [s.correct for s in parallel.scores] == [
            s.correct for s in serial.scores
        ]
        assert parallel.latencies == serial.latencies

    def test_workers_validated(self, tiny_pipeline, tiny_benchmark):
        with pytest.raises(ValueError):
            evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:1], workers=0)

    def test_parallel_checkpoint_resume(self, tiny_pipeline, tiny_benchmark, tmp_path):
        """A parallel run's checkpoint replays to the identical report."""
        path = tmp_path / "ckpt.jsonl"
        examples = tiny_benchmark.dev[:6]
        first = evaluate_pipeline(
            tiny_pipeline, examples, checkpoint_path=path, workers=4
        )
        resumed = evaluate_pipeline(
            tiny_pipeline, examples, checkpoint_path=path, workers=4
        )
        assert resumed.ex == first.ex
        assert [s.correct for s in resumed.scores] == [
            s.correct for s in first.scores
        ]

    def test_shared_gold_cache(self, tiny_pipeline, tiny_benchmark):
        gold = GoldResultCache()
        evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:4], gold_cache=gold)
        assert len(gold) == 4
        # A second run over the same split reuses every gold execution.
        evaluate_pipeline(
            tiny_pipeline, tiny_benchmark.dev[:4], workers=2, gold_cache=gold
        )
        assert len(gold) == 4
        assert gold.stats.hits >= 4


class TestReportLatency:
    def test_latencies_populated(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:4])
        assert len(report.latencies) == 4
        assert all(latency > 0 for latency in report.latencies)
        summary = report.latency_summary()
        assert summary.count == 4
        assert summary.p95 >= summary.p50 > 0

    def test_latency_in_to_dict(self, tiny_pipeline, tiny_benchmark):
        payload = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:3]).to_dict()
        assert payload["latency"]["count"] == 3
        assert payload["latency"]["p50"] > 0


class TestEvaluateSystem:
    def test_callable_system(self, tiny_benchmark):
        class Oracle:
            name = "oracle"

            def answer(self, example):
                return example.gold_sql

        report = evaluate_system(Oracle(), tiny_benchmark, tiny_benchmark.dev)
        assert report.ex == 100.0

    def test_broken_system(self, tiny_benchmark):
        class Broken:
            name = "broken"

            def answer(self, example):
                return "SELECT nope FROM ghost"

        report = evaluate_system(Broken(), tiny_benchmark, tiny_benchmark.dev[:4])
        assert report.ex == 0.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["Method", "EX"], [["GPT-4", 46.35], ["Ours", 69.3]], title="Table"
        )
        lines = text.splitlines()
        assert lines[0] == "Table"
        assert "Method" in lines[1]
        assert "46.4" in text  # floats formatted to 1 decimal
        assert "-+-" in lines[2]

    def test_no_title(self):
        text = format_table(["A"], [["x"]])
        assert text.splitlines()[0].startswith("A")

    def test_empty_rows(self):
        assert "A" in format_table(["A"], [])


class TestReportExport:
    def test_to_dict_shape(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:4])
        payload = report.to_dict()
        assert payload["count"] == 4
        assert set(payload) >= {
            "system", "ex", "ex_g", "ex_r", "r_ves", "ves", "scores", "cost",
        }
        assert len(payload["scores"]) == 4

    def test_save_json_round_trip(self, tiny_pipeline, tiny_benchmark, tmp_path):
        import json

        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:4])
        target = tmp_path / "report.json"
        report.save_json(target)
        loaded = json.loads(target.read_text())
        assert loaded["ex"] == report.ex
        assert loaded["scores"][0]["question_id"] == report.scores[0].question_id
