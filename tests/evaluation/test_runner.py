"""Evaluation runner and report formatting tests."""

import pytest

from repro.evaluation.report import format_table
from repro.evaluation.runner import EvalReport, evaluate_pipeline, evaluate_system
from repro.evaluation.metrics import ExampleScore


class TestEvaluatePipeline:
    def test_report_populated(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:6])
        assert report.count == 6
        assert len(report.generation_scores) == 6
        assert len(report.refined_scores) == 6
        assert 0 <= report.ex <= 100
        assert 0 <= report.r_ves <= 125

    def test_stage_monotonicity_weak(self, tiny_pipeline, tiny_benchmark):
        """EX_R >= EX_G should hold in aggregate (refinement only fixes)."""
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev)
        assert report.ex_r >= report.ex_g - 5  # small-sample slack

    def test_difficulty_breakdown(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev)
        breakdown = report.ex_by_difficulty()
        assert breakdown
        assert all(0 <= v <= 100 for v in breakdown.values())

    def test_cost_merged(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:3])
        assert report.cost.stage("generation").total_tokens > 0

    def test_named_report(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:1], name="x")
        assert report.system == "x"


class TestEvaluateSystem:
    def test_callable_system(self, tiny_benchmark):
        class Oracle:
            name = "oracle"

            def answer(self, example):
                return example.gold_sql

        report = evaluate_system(Oracle(), tiny_benchmark, tiny_benchmark.dev)
        assert report.ex == 100.0

    def test_broken_system(self, tiny_benchmark):
        class Broken:
            name = "broken"

            def answer(self, example):
                return "SELECT nope FROM ghost"

        report = evaluate_system(Broken(), tiny_benchmark, tiny_benchmark.dev[:4])
        assert report.ex == 0.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["Method", "EX"], [["GPT-4", 46.35], ["Ours", 69.3]], title="Table"
        )
        lines = text.splitlines()
        assert lines[0] == "Table"
        assert "Method" in lines[1]
        assert "46.4" in text  # floats formatted to 1 decimal
        assert "-+-" in lines[2]

    def test_no_title(self):
        text = format_table(["A"], [["x"]])
        assert text.splitlines()[0].startswith("A")

    def test_empty_rows(self):
        assert "A" in format_table(["A"], [])


class TestReportExport:
    def test_to_dict_shape(self, tiny_pipeline, tiny_benchmark):
        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:4])
        payload = report.to_dict()
        assert payload["count"] == 4
        assert set(payload) >= {
            "system", "ex", "ex_g", "ex_r", "r_ves", "ves", "scores", "cost",
        }
        assert len(payload["scores"]) == 4

    def test_save_json_round_trip(self, tiny_pipeline, tiny_benchmark, tmp_path):
        import json

        report = evaluate_pipeline(tiny_pipeline, tiny_benchmark.dev[:4])
        target = tmp_path / "report.json"
        report.save_json(target)
        loaded = json.loads(target.read_text())
        assert loaded["ex"] == report.ex
        assert loaded["scores"][0]["question_id"] == report.scores[0].question_id
