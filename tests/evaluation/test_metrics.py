"""Metric tests: EX comparison semantics and the R-VES reward brackets."""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.types import Example
from repro.evaluation.metrics import (
    ExampleScore,
    execution_accuracy,
    r_ves,
    r_ves_reward,
    score_example,
)
from repro.execution.executor import SQLExecutor


@pytest.fixture
def executor():
    conn = sqlite3.connect(":memory:")
    conn.executescript(
        """
        CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL);
        INSERT INTO t VALUES (1, 'A', 10), (2, 'B', 20), (3, 'C', 30);
        """
    )
    yield SQLExecutor(conn)
    conn.close()


def example(gold, difficulty="simple"):
    return Example(
        question_id="q",
        db_id="db",
        question="?",
        gold_sql=gold,
        difficulty=difficulty,
    )


class TestRVESReward:
    @pytest.mark.parametrize(
        "gold,predicted,expected",
        [
            (2.0, 1.0, 1.25),   # 2x faster
            (1.0, 1.0, 1.0),    # equal
            (1.0, 1.5, 0.75),   # somewhat slower
            (1.0, 3.0, 0.5),    # much slower
            (1.0, 10.0, 0.25),  # way slower
        ],
    )
    def test_brackets(self, gold, predicted, expected):
        assert r_ves_reward(True, gold, predicted) == expected

    def test_incorrect_is_zero(self):
        assert r_ves_reward(False, 1.0, 0.1) == 0.0

    def test_zero_times_safe(self):
        assert r_ves_reward(True, 0.0, 0.0) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=1e-6, max_value=10),
        st.floats(min_value=1e-6, max_value=10),
    )
    def test_reward_in_range(self, gold, predicted):
        reward = r_ves_reward(True, gold, predicted)
        assert reward in (0.25, 0.5, 0.75, 1.0, 1.25)


class TestScoreExample:
    def test_exact_match(self, executor):
        score = score_example(
            example("SELECT COUNT(*) FROM t"), "SELECT COUNT(*) FROM t", executor
        )
        assert score.correct

    def test_equivalent_sql_matches(self, executor):
        score = score_example(
            example("SELECT COUNT(*) FROM t"),
            "SELECT COUNT(id) FROM t",
            executor,
        )
        assert score.correct

    def test_wrong_result(self, executor):
        score = score_example(
            example("SELECT COUNT(*) FROM t"),
            "SELECT COUNT(*) FROM t WHERE id > 1",
            executor,
        )
        assert not score.correct

    def test_order_sensitivity_follows_gold(self, executor):
        ordered_gold = example("SELECT name FROM t ORDER BY score DESC")
        score = score_example(
            ordered_gold, "SELECT name FROM t ORDER BY score ASC", executor
        )
        assert not score.correct
        unordered_gold = example("SELECT name FROM t")
        score = score_example(
            unordered_gold, "SELECT name FROM t ORDER BY score DESC", executor
        )
        assert score.correct

    def test_missing_prediction(self, executor):
        score = score_example(example("SELECT COUNT(*) FROM t"), None, executor)
        assert not score.correct
        assert score.predicted_status == "missing"

    def test_error_prediction(self, executor):
        score = score_example(
            example("SELECT COUNT(*) FROM t"), "SELECT nope FROM t", executor
        )
        assert not score.correct
        assert score.predicted_status == "missing_column"

    def test_bad_gold_raises(self, executor):
        with pytest.raises(ValueError):
            score_example(example("SELECT nope FROM t"), "SELECT 1", executor)

    def test_difficulty_propagated(self, executor):
        score = score_example(
            example("SELECT COUNT(*) FROM t", difficulty="challenging"),
            "SELECT COUNT(*) FROM t",
            executor,
        )
        assert score.difficulty == "challenging"


class TestAggregates:
    def scores(self, *flags):
        return [
            ExampleScore(question_id=str(i), correct=flag, gold_time=1, predicted_time=1)
            for i, flag in enumerate(flags)
        ]

    def test_execution_accuracy(self):
        assert execution_accuracy(self.scores(True, True, False, False)) == 50.0

    def test_empty(self):
        assert execution_accuracy([]) == 0.0
        assert r_ves([]) == 0.0

    def test_r_ves_mean(self):
        assert r_ves(self.scores(True, False)) == 50.0

    def test_r_ves_can_exceed_ex(self):
        fast = [
            ExampleScore(
                question_id="a", correct=True, gold_time=2.0, predicted_time=0.5
            )
        ]
        assert r_ves(fast) == 125.0
