"""Schema serialization tests: DDL and prompt rendering."""

import sqlite3

from repro.schema.model import Column, Database, ForeignKey, Table
from repro.schema.serialize import column_doc, schema_to_ddl, schema_to_prompt

DB = Database(
    name="shop",
    description="A small shop.",
    tables=(
        Table(
            name="Customer",
            description="Shop customers.",
            columns=(
                Column("CustomerID", "INTEGER", "customer id", is_primary=True),
                Column("Name", "TEXT", "full name", value_examples=("ANNA", "BO")),
                Column("First Visit", "DATE", "first visit date", not_null=True),
            ),
        ),
        Table(
            name="Orders",
            columns=(
                Column("OrderID", "INTEGER", is_primary=True),
                Column("CustomerID", "INTEGER"),
            ),
        ),
    ),
    foreign_keys=(ForeignKey("Orders", "CustomerID", "Customer", "CustomerID"),),
)


class TestDDL:
    def test_ddl_executes(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript(schema_to_ddl(DB))
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert tables == {"Customer", "Orders"}
        conn.close()

    def test_primary_key_emitted(self):
        assert "CustomerID INTEGER PRIMARY KEY" in schema_to_ddl(DB)

    def test_not_null_emitted(self):
        assert "NOT NULL" in schema_to_ddl(DB)

    def test_quoted_identifier(self):
        assert "`First Visit`" in schema_to_ddl(DB)

    def test_foreign_key_emitted(self):
        ddl = schema_to_ddl(DB)
        assert "FOREIGN KEY (CustomerID) REFERENCES Customer(CustomerID)" in ddl


class TestPrompt:
    def test_contains_all_columns(self):
        prompt = schema_to_prompt(DB)
        for table, column in DB.iter_columns():
            assert f"{table.name}.{column.name}" in prompt

    def test_contains_descriptions(self):
        assert "full name" in schema_to_prompt(DB)

    def test_contains_value_examples(self):
        assert "'ANNA'" in schema_to_prompt(DB)

    def test_examples_omitted_when_disabled(self):
        assert "'ANNA'" not in schema_to_prompt(DB, include_examples=False)

    def test_contains_foreign_keys(self):
        assert "Orders.CustomerID = Customer.CustomerID" in schema_to_prompt(DB)

    def test_database_header(self):
        assert schema_to_prompt(DB).startswith("Database: shop")

    def test_column_doc_marks_primary(self):
        table = DB.table("Customer")
        assert "[primary key]" in column_doc(table, table.column("CustomerID"))
