"""SQLite introspection tests."""

import sqlite3

import pytest

from repro.schema.introspect import introspect_sqlite
from repro.schema.serialize import schema_to_ddl


@pytest.fixture
def conn():
    connection = sqlite3.connect(":memory:")
    connection.executescript(
        """
        CREATE TABLE Author (
            AuthorID INTEGER PRIMARY KEY,
            Name TEXT NOT NULL,
            Country TEXT
        );
        CREATE TABLE Book (
            BookID INTEGER PRIMARY KEY,
            AuthorID INTEGER,
            Title TEXT,
            Pages INTEGER,
            FOREIGN KEY (AuthorID) REFERENCES Author(AuthorID)
        );
        INSERT INTO Author VALUES (1, 'ALPHA', 'FR'), (2, 'BETA', NULL);
        INSERT INTO Book VALUES (1, 1, 'T1', 100), (2, 2, 'T2', 200);
        """
    )
    yield connection
    connection.close()


class TestIntrospect:
    def test_tables_discovered(self, conn):
        db = introspect_sqlite(conn, name="lib")
        assert set(db.table_names) == {"Author", "Book"}

    def test_primary_keys(self, conn):
        db = introspect_sqlite(conn)
        assert db.table("Author").column("AuthorID").is_primary
        assert not db.table("Author").column("Name").is_primary

    def test_not_null(self, conn):
        db = introspect_sqlite(conn)
        assert db.table("Author").column("Name").not_null
        assert not db.table("Author").column("Country").not_null

    def test_foreign_keys(self, conn):
        db = introspect_sqlite(conn)
        (fk,) = db.foreign_keys
        assert (fk.table, fk.column, fk.ref_table, fk.ref_column) == (
            "Book", "AuthorID", "Author", "AuthorID",
        )

    def test_value_examples_sampled(self, conn):
        db = introspect_sqlite(conn, value_examples=3)
        examples = db.table("Author").column("Name").value_examples
        assert set(examples) == {"ALPHA", "BETA"}

    def test_value_examples_disabled(self, conn):
        db = introspect_sqlite(conn, value_examples=0)
        assert db.table("Author").column("Name").value_examples == ()

    def test_descriptions_applied(self, conn):
        db = introspect_sqlite(
            conn, descriptions={("Author", "Name"): "author full name"}
        )
        assert db.table("Author").column("Name").description == "author full name"

    def test_integer_columns_not_sampled(self, conn):
        db = introspect_sqlite(conn)
        assert db.table("Book").column("Pages").value_examples == ()

    def test_round_trip_through_ddl(self, conn):
        """Introspected schema re-creates an equivalent database."""
        db = introspect_sqlite(conn, name="lib")
        fresh = sqlite3.connect(":memory:")
        fresh.executescript(schema_to_ddl(db))
        redone = introspect_sqlite(fresh, name="lib", value_examples=0)
        assert set(redone.table_names) == set(db.table_names)
        assert len(redone.foreign_keys) == len(db.foreign_keys)
        fresh.close()
