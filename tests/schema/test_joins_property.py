"""Property-based join-path tests over random tree-shaped FK graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.joins import assemble_select, join_path
from repro.schema.model import Column, Database, ForeignKey, Table
from repro.sqlkit.parser import parse_select
from repro.sqlkit.render import render
from repro.sqlkit.sql_like import parse_sql_like


@st.composite
def tree_databases(draw):
    """A random database whose FK graph is a tree over 2-7 tables."""
    n = draw(st.integers(min_value=2, max_value=7))
    tables = []
    fks = []
    for i in range(n):
        columns = [Column(f"T{i}ID", "INTEGER", is_primary=True), Column("val")]
        if i > 0:
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            columns.append(Column(f"T{parent}Ref", "INTEGER"))
            fks.append(ForeignKey(f"T{i}", f"T{parent}Ref", f"T{parent}", f"T{parent}ID"))
        tables.append(Table(f"T{i}", tuple(columns)))
    return Database(name="tree", tables=tuple(tables), foreign_keys=tuple(fks))


class TestJoinPathProperties:
    @settings(max_examples=120, deadline=None)
    @given(tree_databases(), st.data())
    def test_any_table_pair_connects(self, database, data):
        n = len(database.tables)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        steps = join_path(database, [f"T{a}", f"T{b}"])
        joined = {f"t{a}"} | {step[1] for step in steps}
        assert f"t{b}" in joined or a == b

    @settings(max_examples=120, deadline=None)
    @given(tree_databases(), st.data())
    def test_steps_form_connected_chain(self, database, data):
        n = len(database.tables)
        wanted = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=n,
            )
        )
        names = [f"T{i}" for i in wanted]
        steps = join_path(database, names)
        connected = {names[0].lower()}
        for from_table, to_table, _fk in steps:
            assert from_table in connected  # each step attaches to the tree
            connected.add(to_table)
        for name in names:
            assert name.lower() in connected

    @settings(max_examples=80, deadline=None)
    @given(tree_databases(), st.data())
    def test_assembled_select_round_trips(self, database, data):
        n = len(database.tables)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        sql_like = parse_sql_like(f"Show T{a}.val WHERE T{b}.val = 'x'")
        select = assemble_select(database, sql_like)
        # The rendered SQL must parse and mention every table on the path.
        reparsed = parse_select(render(select))
        assert reparsed.from_table is not None
        table_names = {t.name.lower() for t in reparsed.tables()}
        assert f"t{a}" in table_names
        assert f"t{b}" in table_names

    @settings(max_examples=80, deadline=None)
    @given(tree_databases(), st.data())
    def test_join_conditions_reference_both_sides(self, database, data):
        n = len(database.tables)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        sql_like = parse_sql_like(f"Show T{a}.val WHERE T{b}.val = 'x'")
        select = assemble_select(database, sql_like)
        bindings = {t.binding for t in select.tables()}
        for join in select.joins:
            condition = join.condition
            assert condition is not None
            assert condition.left.table in bindings
            assert condition.right.table in bindings
