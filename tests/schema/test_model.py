"""Schema model tests: lookups, subsetting, same-name columns, validation."""

import pytest

from repro.schema.model import Column, Database, ForeignKey, Table


def make_db():
    return Database(
        name="db",
        tables=(
            Table(
                name="Patient",
                columns=(
                    Column("ID", "INTEGER", is_primary=True),
                    Column("Name", "TEXT"),
                    Column("City", "TEXT", not_null=True),
                ),
            ),
            Table(
                name="Lab",
                columns=(
                    Column("LabID", "INTEGER", is_primary=True),
                    Column("ID", "INTEGER"),
                    Column("Name", "TEXT"),
                    Column("IGA", "REAL"),
                ),
            ),
        ),
        foreign_keys=(ForeignKey("Lab", "ID", "Patient", "ID"),),
    )


class TestLookups:
    def test_table_case_insensitive(self):
        db = make_db()
        assert db.table("patient").name == "Patient"

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            make_db().table("nope")

    def test_column_case_insensitive(self):
        assert make_db().table("Patient").column("name").name == "Name"

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            make_db().table("Patient").column("nope")

    def test_has_table_and_column(self):
        db = make_db()
        assert db.has_table("LAB")
        assert not db.has_table("X")
        assert db.table("Lab").has_column("iga")
        assert not db.table("Lab").has_column("x")

    def test_primary_key(self):
        pk = make_db().table("Patient").primary_key
        assert [c.name for c in pk] == ["ID"]

    def test_column_count(self):
        assert make_db().column_count() == 7

    def test_iter_columns_order(self):
        names = [f"{t.name}.{c.name}" for t, c in make_db().iter_columns()]
        assert names[0] == "Patient.ID"
        assert names[-1] == "Lab.IGA"

    def test_resolve_column(self):
        db = make_db()
        matches = db.resolve_column("Name")
        assert len(matches) == 2
        hinted = db.resolve_column("Name", table_hint="Lab")
        assert len(hinted) == 1


class TestValidation:
    def test_duplicate_table_names_rejected(self):
        table = Table("T", (Column("a"),))
        with pytest.raises(ValueError):
            Database(name="d", tables=(table, Table("t", (Column("a"),))))

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError):
            Table("T", (Column("a"), Column("A")))

    def test_fk_missing_source_column_rejected(self):
        with pytest.raises(ValueError):
            Database(
                name="d",
                tables=(Table("A", (Column("x"),)), Table("B", (Column("y"),))),
                foreign_keys=(ForeignKey("A", "nope", "B", "y"),),
            )

    def test_fk_missing_target_column_rejected(self):
        with pytest.raises(ValueError):
            Database(
                name="d",
                tables=(Table("A", (Column("x"),)), Table("B", (Column("y"),))),
                foreign_keys=(ForeignKey("A", "x", "B", "nope"),),
            )


class TestSameNameColumns:
    def test_same_name_found_across_tables(self):
        pairs = make_db().same_name_columns("name")
        assert ("Patient", "Name") in pairs
        assert ("Lab", "Name") in pairs

    def test_unique_column(self):
        assert make_db().same_name_columns("IGA") == [("Lab", "IGA")]


class TestSubset:
    def test_keeps_requested_columns(self):
        db = make_db().subset({"Patient": ["City"]})
        assert db.table("Patient").has_column("City")

    def test_always_keeps_primary_keys(self):
        db = make_db().subset({"Patient": ["City"]})
        assert db.table("Patient").has_column("ID")

    def test_drops_unrequested_tables(self):
        db = make_db().subset({"Patient": ["City"]})
        assert not db.has_table("Lab")

    def test_keeps_fk_columns_between_kept_tables(self):
        # Lab.ID is neither primary nor requested, but it is the join key.
        db = make_db().subset({"Patient": ["City"], "Lab": ["IGA"]})
        assert db.table("Lab").has_column("ID")
        assert len(db.foreign_keys) == 1

    def test_fk_dropped_when_endpoint_table_dropped(self):
        db = make_db().subset({"Lab": ["IGA"]})
        assert db.foreign_keys == ()

    def test_unknown_names_ignored(self):
        db = make_db().subset({"Patient": ["City", "Bogus"], "Ghost": ["x"]})
        assert db.has_table("Patient")
        assert not db.has_table("Ghost")

    def test_is_text(self):
        assert Column("d", "DATE").is_text
        assert Column("t", "TEXT").is_text
        assert not Column("n", "INTEGER").is_text
