"""Join-path inference and SQL-Like assembly tests."""

import pytest

from repro.schema.joins import JoinPathError, assemble_select, join_path
from repro.schema.model import Column, Database, ForeignKey, Table
from repro.sqlkit.parser import parse_select
from repro.sqlkit.render import render
from repro.sqlkit.sql_like import parse_sql_like


def chain_db():
    """A → B → C chain plus an isolated island D."""
    def table(name, extra=()):
        return Table(
            name,
            (Column(f"{name}ID", "INTEGER", is_primary=True),)
            + tuple(Column(c) for c in extra),
        )

    return Database(
        name="chain",
        tables=(
            table("A", ("x", "BID")),
            table("B", ("y", "CID")),
            table("C", ("z",)),
            table("D", ("w",)),
        ),
        foreign_keys=(
            ForeignKey("A", "BID", "B", "BID"),
            ForeignKey("B", "CID", "C", "CID"),
        ),
    )


class TestJoinPath:
    def test_single_table_no_steps(self):
        assert join_path(chain_db(), ["A"]) == []

    def test_adjacent_tables(self):
        steps = join_path(chain_db(), ["A", "B"])
        assert len(steps) == 1
        assert steps[0][1] == "b"

    def test_routes_through_intermediate(self):
        steps = join_path(chain_db(), ["A", "C"])
        joined = [s[1] for s in steps]
        assert joined == ["b", "c"]

    def test_unknown_table(self):
        with pytest.raises(JoinPathError):
            join_path(chain_db(), ["A", "Ghost"])

    def test_unreachable_table(self):
        with pytest.raises(JoinPathError):
            join_path(chain_db(), ["A", "D"])

    def test_empty_request(self):
        with pytest.raises(JoinPathError):
            join_path(chain_db(), [])

    def test_duplicates_collapsed(self):
        assert join_path(chain_db(), ["A", "a", "A"]) == []


class TestAssemble:
    def test_single_table_no_alias(self):
        select = assemble_select(chain_db(), parse_sql_like("Show A.x WHERE A.x > 1"))
        sql = render(select)
        assert sql == "SELECT A.x FROM A WHERE A.x > 1"

    def test_two_tables_aliased(self):
        select = assemble_select(
            chain_db(), parse_sql_like("Show A.x WHERE B.y = 1")
        )
        sql = render(select)
        assert "FROM A AS T1" in sql
        assert "INNER JOIN B AS T2 ON T1.BID = T2.BID" in sql
        assert "T2.y = 1" in sql

    def test_three_table_route(self):
        select = assemble_select(
            chain_db(), parse_sql_like("Show A.x WHERE C.z = 1")
        )
        sql = render(select)
        assert "INNER JOIN B" in sql
        assert "INNER JOIN C" in sql

    def test_assembled_sql_parses(self):
        select = assemble_select(
            chain_db(),
            parse_sql_like(
                "Show COUNT(DISTINCT A.x) WHERE C.z = 'v' "
                "GROUP BY B.y ORDER BY A.x DESC LIMIT 2 OFFSET 1"
            ),
        )
        reparsed = parse_select(render(select))
        assert reparsed.limit == 2
        assert reparsed.offset == 1

    def test_unqualified_column_resolved_when_unambiguous(self):
        select = assemble_select(
            chain_db(), parse_sql_like("Show A.x WHERE y = 1")
        )
        # 'y' only exists in B... but B is not referenced via a qualified
        # column, so the statement stays single-table and 'y' is untouched.
        sql = render(select)
        assert "WHERE y = 1" in sql

    def test_unqualified_resolution_within_joined_tables(self):
        select = assemble_select(
            chain_db(), parse_sql_like("Show A.x, B.BID WHERE y = 1")
        )
        assert "T2.y = 1" in render(select)

    def test_no_tables_raises(self):
        with pytest.raises(JoinPathError):
            assemble_select(chain_db(), parse_sql_like("Show COUNT(*)"))

    def test_executes_against_benchmark(self, tiny_benchmark):
        built = tiny_benchmark.database("healthcare")
        sql_like = parse_sql_like(
            "Show COUNT(DISTINCT Patient.ID) WHERE Laboratory.IGA > 80"
        )
        select = assemble_select(built.schema, sql_like)
        outcome = built.executor().execute(render(select))
        assert outcome.ok
