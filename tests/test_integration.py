"""Cross-module integration tests: the paper's qualitative claims, checked
end-to-end on the BIRD-like benchmark (small stratified subsets so the
whole suite stays fast)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import OpenSearchSQL
from repro.datasets.bird import mini_dev
from repro.evaluation.runner import evaluate_pipeline
from repro.llm.simulated import SimulatedLLM
from repro.llm.skills import GPT_4O, GPT_4O_MINI


@pytest.fixture(scope="module")
def mini(bird_benchmark):
    return mini_dev(bird_benchmark, size=80)


@pytest.fixture(scope="module")
def full_report(bird_benchmark, mini):
    pipeline = OpenSearchSQL(
        bird_benchmark, SimulatedLLM(GPT_4O, seed=0), PipelineConfig(n_candidates=9)
    )
    return evaluate_pipeline(pipeline, mini)


def ablated_report(bird_benchmark, mini, **changes):
    config = PipelineConfig(n_candidates=9).with_(**changes)
    pipeline = OpenSearchSQL(bird_benchmark, SimulatedLLM(GPT_4O, seed=0), config)
    return evaluate_pipeline(pipeline, mini)


SLACK = 3.0  # percentage points of small-sample slack


class TestPaperClaims:
    def test_stage_monotonicity(self, full_report):
        """Table 4 headline: EX_G <= EX_R <= EX for the full pipeline."""
        assert full_report.ex_g <= full_report.ex_r + SLACK
        assert full_report.ex_r <= full_report.ex + SLACK

    def test_accuracy_in_plausible_band(self, full_report):
        """Full-pipeline EX should land in the paper's neighbourhood."""
        assert 55 <= full_report.ex <= 85

    def test_difficulty_gradient(self, full_report):
        breakdown = full_report.ex_by_difficulty()
        assert breakdown["simple"] >= breakdown["challenging"]

    def test_fewshot_ablation_hurts_generation(self, bird_benchmark, mini, full_report):
        report = ablated_report(bird_benchmark, mini, fewshot_style="none")
        assert report.ex_g <= full_report.ex_g + 1

    def test_extraction_ablation_hurts(self, bird_benchmark, mini, full_report):
        report = ablated_report(bird_benchmark, mini, use_extraction=False)
        assert report.ex <= full_report.ex + SLACK
        assert report.ex_g <= full_report.ex_g + 1

    def test_vote_helps(self, bird_benchmark, mini, full_report):
        report = ablated_report(bird_benchmark, mini, use_self_consistency=False)
        assert report.ex <= full_report.ex + 1

    def test_cot_sql_fewshot_beats_plain(self, bird_benchmark, mini, full_report):
        report = ablated_report(bird_benchmark, mini, fewshot_style="query_sql")
        assert report.ex_g <= full_report.ex_g + SLACK

    def test_mini_model_weaker(self, bird_benchmark, mini, full_report):
        pipeline = OpenSearchSQL(
            bird_benchmark,
            SimulatedLLM(GPT_4O_MINI, seed=0),
            PipelineConfig(n_candidates=9),
        )
        report = evaluate_pipeline(pipeline, mini)
        assert report.ex < full_report.ex


class TestSpiderGeneralization:
    def test_spider_scores_higher_than_bird(self, bird_benchmark, spider_benchmark):
        """Table 3's implicit claim: the same default configuration scores
        higher on Spider-profile data."""
        config = PipelineConfig(n_candidates=9)
        bird_pipe = OpenSearchSQL(bird_benchmark, SimulatedLLM(GPT_4O, seed=0), config)
        spider_pipe = OpenSearchSQL(
            spider_benchmark, SimulatedLLM(GPT_4O, seed=0), config
        )
        # Full splits on both sides: the gap is a several-point effect and
        # needs the large samples.
        bird_report = evaluate_pipeline(bird_pipe, bird_benchmark.dev)
        spider_report = evaluate_pipeline(
            spider_pipe, spider_benchmark.dev + spider_benchmark.test
        )
        assert spider_report.ex > bird_report.ex


class TestReproducibility:
    def test_identical_runs_identical_reports(self, bird_benchmark, mini):
        def run():
            pipeline = OpenSearchSQL(
                bird_benchmark,
                SimulatedLLM(GPT_4O, seed=0),
                PipelineConfig(n_candidates=5),
            )
            report = evaluate_pipeline(pipeline, mini[:30])
            return [s.correct for s in report.scores]

        assert run() == run()

    def test_hnsw_config_close_to_flat(self, bird_benchmark, mini):
        flat = ablated_report(bird_benchmark, mini[:40])
        pipeline = OpenSearchSQL(
            bird_benchmark,
            SimulatedLLM(GPT_4O, seed=0),
            PipelineConfig(n_candidates=9, vector_index="hnsw"),
        )
        hnsw = evaluate_pipeline(pipeline, mini[:40])
        assert abs(hnsw.ex - flat.ex) <= 10
